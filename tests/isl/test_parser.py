"""Unit tests for the ISL-like relation parser."""

import pytest

from repro.errors import ParseError
from repro.isl import UnionMap, UnionSet, parse_expr, parse_map, parse_set


class TestExpressions:
    def test_linear(self):
        expr = parse_expr("2*i + j - 3")
        assert expr.evaluate({"i": 2, "j": 1}) == 2

    def test_mod_keyword_and_percent(self):
        assert parse_expr("i mod 8").evaluate({"i": 10}) == 2
        assert parse_expr("i % 8").evaluate({"i": 10}) == 2

    def test_floor_and_fl(self):
        assert parse_expr("floor(i/8)").evaluate({"i": 17}) == 2
        assert parse_expr("fl(i/8)").evaluate({"i": 17}) == 2

    def test_nested_affine_inside_mod(self):
        expr = parse_expr("(i + j) mod 4")
        assert expr.evaluate({"i": 3, "j": 2}) == 1

    def test_abs(self):
        assert parse_expr("abs(i - j)").evaluate({"i": 1, "j": 4}) == 3

    def test_unary_minus(self):
        assert parse_expr("-i + 3").evaluate({"i": 1}) == 2

    def test_reject_product_of_variables(self):
        with pytest.raises(ParseError):
            parse_expr("i * j")

    def test_reject_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("i + ]")


class TestSets:
    def test_simple_box(self):
        s = parse_set("{ PE[i, j] : 0 <= i < 8 and 0 <= j < 8 }")
        assert s.count() == 64

    def test_comma_bound_groups(self):
        s = parse_set("{ S[i, j] : 0 <= i,j < 4 }")
        assert s.count() == 16

    def test_unnamed_tuple(self):
        s = parse_set("{ [i] : 0 <= i < 5 }")
        assert s.count() == 5

    def test_disjunction_builds_union(self):
        s = parse_set("{ S[i] : (0 <= i < 3) or (10 <= i < 12) }")
        assert isinstance(s, UnionSet)
        assert s.count() == 5

    def test_set_with_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_set("{ S[i] -> PE[i] }")

    def test_expression_entries_rejected_for_sets(self):
        with pytest.raises(ParseError):
            parse_set("{ S[i + 1] : 0 <= i < 4 }")


class TestMaps:
    def test_functional_map_paper_example(self):
        m = parse_map("{ S[i, j, k] -> PE[i, j] : 0 <= i, j < 2 and 0 <= k < 4 }")
        assert m.is_functional
        assert m.apply_point((1, 0, 3)).coords == (1, 0)
        assert m.domain.count() == 16

    def test_quasi_affine_output(self):
        m = parse_map("{ S[i, j, k] -> T[fl(i/8), fl(j/8), i mod 8 + j mod 8 + k] }")
        assert m.apply_point((9, 17, 2)).coords == (1, 2, 1 + 1 + 2)

    def test_relation_output_with_fresh_names(self):
        m = parse_map("{ PE[i, j] -> PE[a, b] : a = i + 1 and b = j }")
        assert not m.is_functional
        assert m.contains((0, 0), (1, 0))

    def test_disjunctive_relation_is_union(self):
        m = parse_map(
            "{ PE[i, j] -> PE[a, b] : (a = i and b = j + 1) or (a = i + 1 and b = j) }"
        )
        assert isinstance(m, UnionMap)
        assert len(m) == 2

    def test_output_reusing_input_dim_is_functional(self):
        m = parse_map("{ S[i, j, k] -> Y[i, j] }")
        assert m.is_functional
        assert m.apply_point((1, 2, 3)).coords == (1, 2)

    def test_map_without_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_map("{ S[i] : 0 <= i < 4 }")

    def test_unknown_names_in_functional_condition_rejected(self):
        with pytest.raises(ParseError):
            parse_map("{ S[i] -> PE[i mod 4] : 0 <= z < 4 }")

    def test_parenthesised_condition(self):
        m = parse_map("{ S[i] -> PE[i] : (0 <= i and i < 7) }")
        assert m.domain.count() == 7

    def test_tokenizer_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_map("{ S[i] -> PE[i] : i ~ 3 }")
