"""Unit tests for spaces and points."""

import pytest

from repro.errors import SpaceError
from repro.isl.point import Point, env_from
from repro.isl.space import Space, ensure_disjoint, flatten_dims


class TestSpace:
    def test_basic_properties(self):
        space = Space("S", ["i", "j", "k"])
        assert space.rank == 3
        assert len(space) == 3
        assert space.index("j") == 1
        assert space.has_dim("k")
        assert not space.has_dim("x")

    def test_duplicate_dims_rejected(self):
        with pytest.raises(SpaceError):
            Space("S", ["i", "i"])

    def test_index_of_missing_dim(self):
        with pytest.raises(SpaceError):
            Space("S", ["i"]).index("q")

    def test_renamed(self):
        space = Space("PE", ["i", "j"]).renamed(["p", "q"])
        assert space.dims == ("p", "q")
        assert space.name == "PE"

    def test_renamed_wrong_arity(self):
        with pytest.raises(SpaceError):
            Space("PE", ["i", "j"]).renamed(["p"])

    def test_primed(self):
        assert Space("PE", ["i", "j"]).primed().dims == ("i'", "j'")

    def test_str(self):
        assert str(Space("S", ["i", "j"])) == "S[i, j]"

    def test_disjoint_from(self):
        a = Space("S", ["i", "j"])
        assert a.disjoint_from(Space("PE", ["p", "q"]))
        assert not a.disjoint_from(Space("PE", ["i", "q"]))


class TestEnsureDisjoint:
    def test_no_collision_keeps_names(self):
        out = ensure_disjoint(Space("S", ["i", "j"]), Space("PE", ["p", "q"]))
        assert out.dims == ("p", "q")

    def test_collision_primes_names(self):
        out = ensure_disjoint(Space("PE", ["i", "j"]), Space("PE", ["i", "j"]))
        assert out.dims == ("i'", "j'")

    def test_double_collision_stacks_primes(self):
        out = ensure_disjoint(Space("PE", ["i", "i'"]), Space("PE", ["i", "x"]))
        assert out.dims == ("i''", "x")


class TestFlattenDims:
    def test_flatten(self):
        dims = flatten_dims([Space("S", ["i"]), Space("PE", ["p"])])
        assert dims == ("i", "p")

    def test_flatten_collision(self):
        with pytest.raises(SpaceError):
            flatten_dims([Space("S", ["i"]), Space("PE", ["i"])])


class TestPoint:
    def test_env_and_access(self):
        point = Point(Space("S", ["i", "j"]), (3, 4))
        assert point.env() == {"i": 3, "j": 4}
        assert point[0] == 3
        assert point.value("j") == 4
        assert list(point) == [3, 4]
        assert str(point) == "S[3, 4]"

    def test_wrong_rank(self):
        with pytest.raises(SpaceError):
            Point(Space("S", ["i", "j"]), (1,))

    def test_env_from(self):
        assert env_from(Space("S", ["i"]), [7]) == {"i": 7}
        with pytest.raises(SpaceError):
            env_from(Space("S", ["i"]), [7, 8])
