"""Unit tests for unions of sets and maps."""

import pytest

from repro.errors import SpaceError
from repro.isl import UnionMap, UnionSet, parse_map, parse_set
from repro.isl.union import as_union_map, as_union_set


class TestUnionSet:
    def test_count_removes_duplicates(self):
        a = parse_set("{ S[i] : 0 <= i < 5 }")
        b = parse_set("{ S[i] : 3 <= i < 8 }")
        union = UnionSet([a, b])
        assert union.count() == 8

    def test_contains(self):
        union = parse_set("{ S[i] : (0 <= i < 2) or (5 <= i < 6) }")
        assert union.contains((5,))
        assert not union.contains((3,))

    def test_mixed_spaces_rejected(self):
        with pytest.raises(SpaceError):
            UnionSet([parse_set("{ S[i] : 0 <= i < 2 }"), parse_set("{ T[t] : 0 <= t < 2 }")])

    def test_as_union_set_wraps(self):
        s = parse_set("{ S[i] : 0 <= i < 2 }")
        assert len(as_union_set(s)) == 1
        assert len(as_union_set(UnionSet([s, s]))) == 2


class TestUnionMap:
    def test_contains_any_piece(self):
        union = parse_map(
            "{ PE[i, j] -> PE[a, b] : (a = i and b = j + 1) or (a = i + 1 and b = j) }"
        )
        assert union.contains((0, 0), (0, 1))
        assert union.contains((0, 0), (1, 0))
        assert not union.contains((0, 0), (1, 1))

    def test_count_pairs_removes_duplicates(self):
        a = parse_map("{ S[i] -> PE[i] : 0 <= i < 4 }")
        b = parse_map("{ S[i] -> PE[i] : 2 <= i < 6 }")
        assert UnionMap([a, b]).count_pairs() == 6

    def test_compose_distributes_over_pieces(self):
        access = UnionMap([
            parse_map("{ S[i] -> A[i] }"),
            parse_map("{ S[i] -> A[i + 1] }"),
        ])
        shift = parse_map("{ A[a] -> B[2*a] }")
        composed = access.compose(shift)
        assert len(composed) == 2
        assert composed.pieces[1].apply_point((3,)).coords == (8,)

    def test_reverse(self):
        union = as_union_map(parse_map("{ S[i] -> PE[i mod 2] : 0 <= i < 4 }"))
        reversed_union = union.reverse()
        assert reversed_union.pieces[0].contains((1,), (3,))

    def test_functional_union_flag(self):
        functional = as_union_map(parse_map("{ S[i] -> A[i] }"))
        relation = as_union_map(parse_map("{ PE[i] -> PE[a] : a = i + 1 }"))
        assert functional.is_functional_union
        assert not relation.is_functional_union
