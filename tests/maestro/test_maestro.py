"""Tests for the data-centric notation and the polynomial baseline model."""

import pytest

from repro.errors import ModelError
from repro.maestro import (
    Cluster,
    DataCentricMapping,
    MaestroModel,
    SpatialMap,
    TemporalMap,
    default_mapping_for,
    mapping_to_dataflow,
)
from repro.tensor import conv1d, conv2d, gemm


@pytest.fixture()
def gemm_mapping():
    return DataCentricMapping("(K-P | I,J-T)", [SpatialMap("k"), TemporalMap("i"), TemporalMap("j")])


class TestDirectives:
    def test_levels_split_on_cluster(self):
        mapping = DataCentricMapping("clustered", [
            SpatialMap("k"), Cluster(8), SpatialMap("c"), TemporalMap("ox"),
        ])
        assert len(mapping.levels) == 2
        assert mapping.cluster_sizes == [8]

    def test_spatial_and_temporal_dims(self, gemm_mapping):
        assert gemm_mapping.spatial_dims() == ["k"]
        assert gemm_mapping.temporal_dims() == ["i", "j"]
        assert gemm_mapping.innermost_temporal_dim() == "j"

    def test_validate_against_unknown_dim(self, gemm_mapping):
        with pytest.raises(ModelError):
            gemm_mapping.validate_against(["a", "b"])

    def test_empty_mapping_rejected(self):
        with pytest.raises(ModelError):
            DataCentricMapping("empty", [])

    def test_str_matches_table3_style(self, gemm_mapping):
        text = str(gemm_mapping)
        assert "SpatialMap(1,1) K" in text


class TestPolynomialModel:
    def test_figure1_overestimate(self):
        """The motivating example: data-centric reuse of A is 8, not the true 6."""
        op = conv1d(4, 3)
        mapping = DataCentricMapping("fig1", [SpatialMap("i"), TemporalMap("j")])
        report = MaestroModel(num_pes=4).analyze(op, mapping)
        estimate = report.tensors["A"]
        assert estimate.total_accesses == 12
        assert estimate.total_accesses - estimate.unique_volume == pytest.approx(8)

    def test_output_never_reused(self):
        op = gemm(8, 8, 8)
        mapping = DataCentricMapping("x", [SpatialMap("k"), TemporalMap("i"), TemporalMap("j")])
        report = MaestroModel(num_pes=64).analyze(op, mapping)
        assert report.tensors["Y"].reuse_factor == 1.0

    def test_used_pes_bounded_by_array(self):
        op = gemm(256, 8, 8)
        mapping = DataCentricMapping("x", [SpatialMap("i"), TemporalMap("j"), TemporalMap("k")])
        report = MaestroModel(num_pes=64).analyze(op, mapping)
        assert report.used_pes == 64
        assert report.average_pe_utilization == 1.0

    def test_latency_is_max_of_delays(self, gemm_mapping):
        op = gemm(16, 16, 16)
        report = MaestroModel(num_pes=16, bandwidth_bits_per_cycle=32).analyze(op, gemm_mapping)
        assert report.latency_cycles == max(
            report.compute_delay, report.read_delay, report.write_delay
        )

    def test_runs_in_microseconds(self, gemm_mapping):
        op = gemm(64, 64, 64)
        report = MaestroModel(num_pes=64).analyze(op, gemm_mapping)
        assert report.analysis_seconds < 0.05

    def test_conv_input_reuse_overestimated_vs_filter(self):
        op = conv2d(8, 8, 7, 7, 3, 3)
        mapping = DataCentricMapping("conv", [
            SpatialMap("k"), TemporalMap("c"), TemporalMap("oy"), TemporalMap("ox"),
            TemporalMap("ry"), TemporalMap("rx"),
        ])
        report = MaestroModel(num_pes=64).analyze(op, mapping)
        # The halo coupling (ox+rx, oy+ry) is dropped, so rx becomes "irrelevant"
        # and the input reuse is credited the filter extent as well as K.
        assert report.tensors["A"].reuse_factor >= 8  # at least the spatial K broadcast

    def test_invalid_pe_count(self):
        with pytest.raises(ModelError):
            MaestroModel(num_pes=0)


class TestConversion:
    def test_mapping_to_dataflow_equivalence(self, gemm_mapping):
        op = gemm(16, 16, 128)
        dataflow = mapping_to_dataflow(gemm_mapping, op, pe_dims=(64,))
        pe, time = dataflow.stamp_of((3, 4, 70))
        assert pe == (70 % 64,)
        # unmapped/fold dims appear before the temporal dims i, j
        assert time[-2:] == (3, 4)

    def test_mapping_to_dataflow_validates(self, gemm_mapping):
        from repro.arch import PEArray

        op = gemm(16, 16, 16)
        dataflow = mapping_to_dataflow(gemm_mapping, op, pe_dims=(64,))
        assert dataflow.validate(op, PEArray((64,))).is_valid

    def test_cluster_mapping_rejected(self):
        op = conv2d(8, 8, 7, 7, 3, 3)
        mapping = DataCentricMapping("clustered", [
            SpatialMap("k"), Cluster(8), SpatialMap("c"), TemporalMap("ox"),
        ])
        with pytest.raises(ModelError):
            mapping_to_dataflow(mapping, op, pe_dims=(8, 8))

    def test_too_many_spatial_maps_rejected(self):
        op = gemm(8, 8, 8)
        mapping = DataCentricMapping("threespatial", [
            SpatialMap("i"), SpatialMap("j"), SpatialMap("k"),
        ])
        with pytest.raises(ModelError):
            mapping_to_dataflow(mapping, op, pe_dims=(8, 8))

    def test_default_mapping_lookup(self):
        mapping = default_mapping_for("gemm", "(K-P | I,J-T)")
        assert mapping.spatial_dims() == ["k"]
        with pytest.raises(ModelError):
            default_mapping_for("gemm", "(IJ-P | J,IJK-T)")
