"""Tests for the reference spacetime simulator and its agreement with the analyzer."""

import pytest

from repro.arch import ArchSpec, Mesh, PEArray, Systolic2D
from repro.core import Dataflow, analyze
from repro.dataflows import get_dataflow
from repro.errors import ModelError
from repro.sim import SpacetimeSimulator, simulate
from repro.tensor import conv2d, gemm


@pytest.fixture(scope="module")
def figure3_setup():
    op = gemm(2, 2, 4)
    dataflow = Dataflow.from_exprs("(IJ-P | J,IJK-T)", op, ["i", "j"], ["i + j + k"])
    arch = ArchSpec(pe_array=PEArray((2, 2)), interconnect=Systolic2D(), name="2x2")
    return op, dataflow, arch


class TestFigure3Simulation:
    def test_scratchpad_traffic_matches_unique_volumes(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        report = analyze(op, dataflow, arch)
        assert result.reads_per_tensor["A"] == report.volumes["A"].unique
        assert result.reads_per_tensor["B"] == report.volumes["B"].unique
        assert result.writes_per_tensor["Y"] == report.volumes["Y"].unique

    def test_noc_transfers_match_spatial_reuse(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        report = analyze(op, dataflow, arch)
        assert result.noc_per_tensor["A"] == report.volumes["A"].spatial_reuse
        assert result.noc_per_tensor["B"] == report.volumes["B"].spatial_reuse

    def test_register_hits_match_temporal_reuse(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        report = analyze(op, dataflow, arch)
        # inputs only: outputs are retained in registers by construction
        analytic_temporal = report.volumes["A"].temporal_reuse + report.volumes["B"].temporal_reuse
        assert result.register_hits == analytic_temporal

    def test_compute_cycles_match_time_stamps(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        assert result.compute_cycles == 6
        assert result.num_time_steps == 6

    def test_utilization_matches(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        report = analyze(op, dataflow, arch)
        assert result.average_pe_utilization == pytest.approx(report.average_pe_utilization)


class TestSimulatorBehaviour:
    def test_gemm_catalog_dataflow_agreement(self):
        op = gemm(16, 16, 16)
        dataflow = get_dataflow("gemm", "(IJ-P | J,IJK-T)")
        arch = ArchSpec(pe_array=PEArray((8, 8)), interconnect=Systolic2D())
        result = simulate(op, dataflow, arch)
        report = analyze(op, dataflow, arch)
        assert result.scratchpad_reads == report.volumes["A"].unique + report.volumes["B"].unique
        assert result.scratchpad_writes == report.volumes["Y"].unique

    def test_conv_simulation_runs(self):
        op = conv2d(4, 4, 5, 5, 3, 3)
        dataflow = get_dataflow("conv2d", "(KC-P | OY,OX-T)", rows=4, cols=4)
        arch = ArchSpec(pe_array=PEArray((4, 4)), interconnect=Systolic2D())
        result = simulate(op, dataflow, arch)
        assert result.num_instances == op.num_instances()
        assert result.total_cycles >= result.compute_cycles

    def test_register_capacity_increases_traffic(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        unconstrained = simulate(op, dataflow, arch)
        constrained = simulate(op, dataflow, arch, register_capacity_words=1)
        assert constrained.scratchpad_reads >= unconstrained.scratchpad_reads
        assert constrained.register_spills > 0

    def test_bandwidth_limits_total_cycles(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        fast = simulate(op, dataflow, arch)
        slow = simulate(op, dataflow, arch.with_bandwidth(8.0))
        assert slow.total_cycles > fast.total_cycles

    def test_step_records(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = SpacetimeSimulator(op, dataflow, arch, keep_steps=True).run()
        assert len(result.steps) == result.num_time_steps
        assert sum(step.instances for step in result.steps) == result.num_instances

    def test_instance_cap(self):
        op = gemm(64, 64, 64)
        dataflow = get_dataflow("gemm", "(IJ-P | J,IJK-T)")
        arch = ArchSpec()
        with pytest.raises(ModelError):
            simulate(op, dataflow, arch, max_instances=1000)

    def test_mesh_enables_diagonal_reuse_for_skewed_access(self):
        from repro.tensor import conv1d

        op = conv1d(4, 3)
        dataflow = Dataflow.from_exprs("fig1", op, ["i"], ["j"])
        arch = ArchSpec(pe_array=PEArray((4,)), interconnect=Mesh(), name="1d")
        result = simulate(op, dataflow, arch)
        assert result.noc_per_tensor.get("A", 0) == 6

    def test_summary_and_as_dict(self, figure3_setup):
        op, dataflow, arch = figure3_setup
        result = simulate(op, dataflow, arch)
        assert "cycles" in result.summary()
        assert result.as_dict()["operation"] == "GEMM"


class TestEngineSimulatorCrossValidation:
    """Fast-lane guard for the Fig. 11 accuracy path: the batched evaluation
    engine and the explicit spacetime simulator must agree on the relation
    cardinalities they both count."""

    CASES = [
        (gemm(8, 8, 8), "gemm", "(IJ-P | J,IJK-T)"),
        (conv2d(4, 4, 5, 5, 3, 3), "conv2d", "(KC-P | OY,OX-T)"),
    ]

    @pytest.mark.parametrize("op,kernel,name", CASES,
                             ids=[op.name for op, _, _ in CASES])
    def test_total_volumes_agree(self, op, kernel, name):
        from repro.core.engine import EvaluationEngine, RelationCache

        dataflow = get_dataflow(kernel, name)
        arch = ArchSpec(pe_array=PEArray((8, 8)), interconnect=Systolic2D(), name="8x8")
        report = EvaluationEngine(op, arch, cache=RelationCache()).evaluate(dataflow)
        sim = simulate(op, dataflow, arch)
        # Every access the simulator executes is one (stamp, element) pair of
        # the assignment relation the engine counts.
        for tensor in op.tensor_names:
            assert report.volumes[tensor].total == sim.accesses_per_tensor[tensor], tensor
        # Input operands resolved outside registers/NoC hit the scratchpad, so
        # the simulated read traffic is exactly the engine's unique volume.
        for tensor in op.input_tensors:
            assert report.volumes[tensor].unique == sim.reads_per_tensor[tensor], tensor
        assert report.utilization.num_instances == sim.num_instances
        assert report.utilization.num_time_stamps == sim.num_time_steps
