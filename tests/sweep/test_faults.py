"""Tests for deterministic fault injection and the recovery paths it proves.

Covers the fault plan/injector themselves, torn-checkpoint recovery at every
truncation offset of the final record, the client's backoff/deadline/pipeline
recovery discipline (against a scripted fake server), the service watchdog,
engine-build quarantine, and the ``error_record`` protocol paths.
"""

import asyncio
import json
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.engine import EvaluationEngine, RelationCache
from repro.dse.pruning import pruned_candidates
from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.sweep import (
    EngineQuarantinedError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedDisconnect,
    InjectedFault,
    JsonlCheckpointSink,
    PipelineBrokenError,
    ResultSink,
    SweepClient,
    SweepRequest,
    SweepServer,
    SweepService,
    SweepSession,
    load_ranking,
    render_ranking,
    serve_lines,
)
from repro.sweep import faults
from repro.sweep.net import error_record
from repro.tensor.kernels import gemm


@pytest.fixture(autouse=True)
def _clear_global_injector():
    yield
    faults.install(None)


def wait_until(predicate, timeout=20.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def free_port():
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def ranking_key(entries):
    return [(e.signature, e.name, e.score, e.data) for e in entries]


# -- plan and injector ---------------------------------------------------------------


class TestFaultPlan:
    EVENTS = [
        {"site": "net.write", "kind": "torn", "within": 20, "arg_max": 100},
        {"site": "server.request", "kind": "kill", "within": 5},
        {"site": "sink.write", "kind": "truncate", "within": 3, "arg": 7},
    ]

    def test_seeded_is_deterministic_and_round_trips(self):
        plan = FaultPlan.seeded(1234, self.EVENTS)
        again = FaultPlan.seeded(1234, self.EVENTS)
        assert plan.to_json() == again.to_json()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.specs == plan.specs
        assert restored.seed == 1234
        # fixed arg passes through the draw untouched
        assert plan.specs[2].arg == 7
        for spec in plan.specs:
            assert 1 <= spec.at

    def test_unknown_site_kind_and_bad_at_rejected(self):
        with pytest.raises(ExplorationError, match="unknown fault site"):
            FaultSpec(site="disk.write", kind="drop", at=1)
        with pytest.raises(ExplorationError, match="unknown fault kind"):
            FaultSpec(site="net.read", kind="explode", at=1)
        with pytest.raises(ExplorationError, match="1-based"):
            FaultSpec(site="net.read", kind="drop", at=0)
        with pytest.raises(ExplorationError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"site": "net.read", "kind": "drop", "at": 1, "x": 2})
        with pytest.raises(ExplorationError, match="'specs' list"):
            FaultPlan.from_json("[]")

    def test_install_from_env_inline_json_and_file(self, tmp_path):
        plan = FaultPlan(specs=[FaultSpec("net.read", "drop", at=2)], seed=9)
        injector = faults.install_from_env({faults.FAULTS_ENV: plan.to_json()})
        assert injector is faults.active()
        assert injector.plan.specs == plan.specs
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        from_file = faults.install_from_env({faults.FAULTS_ENV: str(path)})
        assert from_file.plan.specs == plan.specs
        # unset env is a no-op that keeps whatever is armed
        assert faults.install_from_env({}) is from_file


class TestFaultInjector:
    def test_fires_exactly_once_at_nth_event(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("sink.write", "error", at=3)])
        )
        fired_at = []
        for event in range(1, 6):
            try:
                injector.apply("sink.write")
            except InjectedFault:
                fired_at.append(event)
        assert fired_at == [3]
        assert injector.fired == [("sink.write", "error", 3)]
        assert injector.count("sink.write") == 5

    def test_drop_is_a_connection_error(self):
        injector = FaultInjector(FaultPlan(specs=[FaultSpec("net.read", "drop", at=1)]))
        with pytest.raises(ConnectionError):
            injector.apply("net.read")

    def test_sites_count_independently(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("client.recv", "drop", at=1)])
        )
        assert injector.apply("client.send") is None
        with pytest.raises(InjectedDisconnect):
            injector.apply("client.recv")

    def test_delay_sleeps(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("server.request", "delay", at=1, arg=0.05)])
        )
        start = time.monotonic()
        assert injector.apply("server.request") is None
        assert time.monotonic() - start >= 0.04

    def test_torn_and_truncate_return_to_caller(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("net.write", "torn", at=1, arg=5)])
        )
        spec = injector.apply("net.write")
        assert spec is not None and spec.kind == "torn" and spec.arg == 5

    def test_apply_async_delay(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("net.read", "delay", at=1, arg=0.05)])
        )

        async def go():
            start = time.monotonic()
            spec = await injector.apply_async("net.read")
            return spec, time.monotonic() - start

        spec, elapsed = asyncio.run(go())
        assert spec is None and elapsed >= 0.04


# -- torn-checkpoint recovery --------------------------------------------------------


class RecordingSink(ResultSink):
    def __init__(self):
        self.records = []

    def emit(self, outcome, score):
        self.records.append((outcome, score))


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One small real sweep: its outcomes, meta, and reference checkpoint."""
    op = gemm(12, 12, 12)
    arch = make_arch(pe_dims=(4, 4))
    engine = EvaluationEngine(op, arch, cache=RelationCache())
    recorder = RecordingSink()
    reference = tmp_path_factory.mktemp("faults") / "reference.jsonl"
    session = SweepSession(engine, checkpoint=str(reference), sinks=[recorder])
    candidates = list(
        pruned_candidates(op, pe_dims=(4, 4), allow_packing=True, max_candidates=6)
    )
    session.run(candidates)
    assert recorder.records, "sweep produced no outcomes"
    return SimpleNamespace(
        records=recorder.records,
        meta=session.meta(None),
        reference=reference,
        rendered=render_ranking(load_ranking(reference)),
    )


class TestTornCheckpointRecovery:
    def test_recovery_at_every_truncation_offset(self, swept, tmp_path):
        """A crash at *any* byte of the final record loses at most that record,
        and a resume reproduces the undisturbed ranking bit for bit."""
        last_line = swept.reference.read_text(encoding="utf-8").splitlines(
            keepends=True
        )[-1]
        n_records = len(swept.records)
        for k in range(len(last_line) + 1):
            chaos = tmp_path / f"chaos-{k}.jsonl"
            injector = FaultInjector(
                FaultPlan(
                    specs=[FaultSpec("sink.write", "truncate", at=n_records, arg=k)]
                )
            )
            sink = JsonlCheckpointSink(chaos, fault_injector=injector)
            sink.open(swept.meta)
            with pytest.raises(InjectedFault, match="torn after"):
                for outcome, score in swept.records:
                    sink.emit(outcome, score)
            sink.close()
            resumed = JsonlCheckpointSink(chaos, resume=True)
            resumed.open(swept.meta)
            # The torn prefix parses as a record only once it covers the whole
            # JSON body (the trailing newline is optional); any shorter prefix
            # drops exactly the final record.
            survived = k >= len(last_line) - 1
            assert len(resumed.completed) == n_records - (0 if survived else 1)
            for outcome, score in swept.records:
                if outcome.signature not in resumed.completed:
                    resumed.emit(outcome, score)
            resumed.close()
            assert render_ranking(load_ranking(chaos)) == swept.rendered

    def test_fsync_every_keeps_records_identical(self, swept, tmp_path):
        path = tmp_path / "fsynced.jsonl"
        sink = JsonlCheckpointSink(path, fsync_every=2)
        sink.open(swept.meta)
        for outcome, score in swept.records:
            sink.emit(outcome, score)
        sink.close()
        assert render_ranking(load_ranking(path)) == swept.rendered

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ExplorationError, match="fsync_every"):
            JsonlCheckpointSink(tmp_path / "x.jsonl", fsync_every=-1)


# -- client retry discipline (scripted fake server) ----------------------------------


class FakeServer:
    """A line server whose replies are scripted per request.

    ``responder(conn_index, record)`` returns a dict reply, raw ``bytes``
    (sent verbatim, then the connection closes — a torn write), or ``None``
    (close the connection without replying).
    """

    def __init__(self, responder):
        self.responder = responder
        self.received = []
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        conn_index = 0
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            conn_index += 1
            with conn, conn.makefile("rb") as reader:
                for line in reader:
                    record = json.loads(line)
                    self.received.append((conn_index, record))
                    try:
                        reply = self.responder(conn_index, record)
                    except Exception:  # noqa: BLE001 - scripted close
                        break
                    if reply is None:
                        break
                    if isinstance(reply, bytes):
                        conn.sendall(reply)
                        break
                    conn.sendall(json.dumps(reply).encode("utf-8") + b"\n")

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def fake_server():
    servers = []

    def factory(responder):
        server = FakeServer(responder)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


class TestClientRetryDiscipline:
    def test_injected_send_drop_is_retried_with_retry_tag(self, fake_server):
        server = fake_server(
            lambda conn, rec: {"pong": True, "retry_seen": rec.get("retry", False)}
        )
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("client.send", "drop", at=1)])
        )
        with SweepClient(
            "127.0.0.1",
            server.port,
            timeout=5,
            deadline=5,
            backoff_base=0.001,
            jitter_seed=0,
            fault_injector=injector,
        ) as client:
            record = client.request({"cmd": "stats"})
        assert record["retry_seen"] is True
        assert client.retries_sent == 1

    def test_overloaded_retried_only_with_deadline(self, fake_server):
        state = {"count": 0}

        def responder(conn, rec):
            state["count"] += 1
            if state["count"] == 1:
                return {"error": "queue full", "code": "overloaded"}
            return {"done": True}

        server = fake_server(responder)
        with SweepClient(
            "127.0.0.1", server.port, timeout=5, deadline=5, backoff_base=0.001
        ) as client:
            assert client.request({"cmd": "stats"})["done"] is True

        # Without a deadline the structured reply comes back unchanged.
        state["count"] = 0
        with SweepClient("127.0.0.1", server.port, timeout=5) as client:
            record = client.request({"cmd": "stats"})
        assert record["code"] == "overloaded"

    def test_deadline_bounds_overload_retries(self, fake_server):
        server = fake_server(
            lambda conn, rec: {"error": "queue full", "code": "overloaded"}
        )
        with SweepClient(
            "127.0.0.1", server.port, timeout=5, deadline=0.25, backoff_base=0.01
        ) as client:
            start = time.monotonic()
            with pytest.raises(ExplorationError, match="overloaded"):
                client.sweep("gemm", [4, 4, 4])
            assert time.monotonic() - start >= 0.2

    def test_unreachable_server_raises_after_deadline(self):
        client = SweepClient(
            "127.0.0.1", free_port(), timeout=1, deadline=0.3, backoff_base=0.01
        )
        with pytest.raises(ExplorationError, match="unreachable.*deadline"):
            client.request({"cmd": "stats"})
        assert client.retries_sent >= 1

    def test_recv_preserves_pending_and_recover_resubmits(self, fake_server):
        # Server A answers the first request, then dies mid-pipeline.
        server_a = fake_server(
            lambda conn, rec: {"id": rec["id"]} if rec["id"] == "req-1" else None
        )
        client = SweepClient(
            "127.0.0.1", server_a.port, timeout=5, deadline=5, backoff_base=0.001
        )
        client.submit({"cmd": "stats"})
        client.submit({"cmd": "stats"})
        assert client.recv()["id"] == "req-1"
        with pytest.raises(PipelineBrokenError, match="req-2") as excinfo:
            client.recv()
        assert excinfo.value.pending == ["req-2"]
        assert client.pending == 1, "pending state must survive the break"

        # Recover onto a fresh server at a new address.
        server_b = fake_server(
            lambda conn, rec: {"id": rec["id"], "retry": rec.get("retry", False)}
        )
        assert client.recover("127.0.0.1", server_b.port) == ["req-2"]
        records = client.drain()
        assert [r["id"] for r in records] == ["req-2"]
        assert records[0]["retry"] is True
        assert client.pending == 0
        client.close()

    def test_torn_response_line_is_a_connection_loss(self, fake_server):
        server = fake_server(lambda conn, rec: b'{"id": "req-1"')
        client = SweepClient("127.0.0.1", server.port, timeout=5)
        client.submit({"cmd": "stats"})
        with pytest.raises(PipelineBrokenError, match="torn line"):
            client.recv()
        assert client.pending == 1
        client.close()

    def test_backoff_is_exponential_jittered_and_capped(self):
        client = SweepClient(backoff_base=0.1, backoff_max=0.5, jitter_seed=7)
        delays = [client._backoff_delay(attempt) for attempt in range(1, 8)]
        for attempt, delay in enumerate(delays, start=1):
            ceiling = min(0.5, 0.1 * (2 ** (attempt - 1)))
            assert ceiling * 0.5 <= delay <= ceiling
        again = SweepClient(backoff_base=0.1, backoff_max=0.5, jitter_seed=7)
        assert delays == [again._backoff_delay(a) for a in range(1, 8)]


# -- service watchdog and torn writes (real service) ---------------------------------


class ServiceHarness:
    """Run a :class:`SweepService` TCP loop on a background thread."""

    def __init__(self, **service_kwargs):
        self.service = SweepService(**service_kwargs)
        self.host = None
        self.port = None
        self.loop = None
        self.error = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _announce(self, host, port):
        self.host, self.port = host, port
        self._ready.set()

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            try:
                await self.service.serve_tcp("127.0.0.1", 0, announce=self._announce)
            finally:
                await self.service.aclose()

        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            self.error = error
        finally:
            self._ready.set()

    def start(self):
        self._thread.start()
        assert self._ready.wait(30), "service never announced its address"
        if self.error is not None:
            raise self.error
        return self

    def stop(self, timeout=30.0):
        if self._thread.is_alive() and self.loop is not None:
            self.loop.call_soon_threadsafe(self.service.request_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service thread did not drain"
        if self.error is not None:
            raise self.error

    def client(self, **kwargs):
        return SweepClient(self.host, self.port, **kwargs)


@pytest.fixture
def harness():
    started = []

    def factory(**kwargs):
        instance = ServiceHarness(**kwargs).start()
        started.append(instance)
        return instance

    yield factory
    for instance in started:
        instance.stop()


class TestServiceWatchdog:
    def test_hung_request_times_out_and_server_stays_usable(self, harness):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("server.request", "delay", at=1, arg=1.5)])
        )
        instance = harness(
            max_workers=2, request_timeout=0.4, fault_injector=injector
        )
        with instance.client(timeout=30) as client:
            start = time.monotonic()
            record = client.request(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            )
            elapsed = time.monotonic() - start
            assert record["code"] == "timeout"
            assert "watchdog" in record["error"]
            # The reply must beat the injected 1.5s hang: the watchdog
            # unblocked the connection, not the hung worker finishing.
            assert elapsed < 1.4
            # The service keeps serving: a second request (fresh engine, free
            # worker) completes normally.
            result = client.sweep("gemm", [13, 13, 13], max_candidates=4)
            assert result["top"]
            stats = client.stats()
            assert stats["faults"]["request_timeouts"] == 1

    def test_retries_served_counter(self, harness):
        instance = harness(max_workers=2)
        with instance.client(timeout=30) as client:
            record = client.request(
                {
                    "kernel": "gemm",
                    "sizes": [12, 12, 12],
                    "max_candidates": 4,
                    "retry": True,
                }
            )
            assert record["top"]
            assert client.stats()["faults"]["retries_served"] == 1

    def test_torn_server_write_recovers_on_resubmit(self, harness):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("net.write", "torn", at=1, arg=5)])
        )
        instance = harness(max_workers=2, fault_injector=injector)
        with instance.client(timeout=30, deadline=20, backoff_base=0.01) as client:
            request = {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            client.submit(request)
            client.submit(dict(request, objective="energy"))
            with pytest.raises(PipelineBrokenError) as excinfo:
                client.drain()
            assert excinfo.value.pending, "outstanding ids must be reported"
            assert client.pending == 2
            client.recover()
            records = client.drain()
            assert [r["id"] for r in records] == ["req-1", "req-2"]
            assert all(r["top"] for r in records)
            assert client.stats()["faults"]["retries_served"] == 2


# -- engine-build quarantine ---------------------------------------------------------


class TestEngineQuarantine:
    def test_build_failure_quarantines_key_until_cooldown(self):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("engine.build", "error", at=1)])
        )
        with SweepServer(
            max_workers=1, quarantine_cooldown=0.3, fault_injector=injector
        ) as server:
            request = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            )
            with pytest.raises(InjectedFault):
                server.submit(request)
            # Fail fast until the cooldown passes — no rebuild attempt.
            with pytest.raises(EngineQuarantinedError, match="quarantined"):
                server.submit(request)
            stats = server.stats()
            assert stats["engine_build_failures"] == 1
            assert stats["quarantined_engines"] == 1
            # Other engine keys are unaffected.
            other = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [13, 13, 13], "max_candidates": 4}
            )
            result, _ = server.submit(other).result(timeout=120)
            assert result.ranking
            # After the cooldown the build is retried (and now succeeds).
            time.sleep(0.35)
            result, _ = server.submit(request).result(timeout=120)
            assert result.ranking
            assert server.stats()["quarantined_engines"] == 0

    def test_quarantine_code_reaches_the_wire(self, harness):
        injector = FaultInjector(
            FaultPlan(specs=[FaultSpec("engine.build", "error", at=1)])
        )
        instance = harness(max_workers=2, fault_injector=injector)
        with instance.client(timeout=30) as client:
            request = {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            first = client.request(request)
            assert "injected failure" in first["error"]
            second = client.request(request)
            assert second["code"] == "quarantined"
            stats = client.stats()
            assert stats["faults"]["engine_build_failures"] == 1
            assert stats["faults"]["quarantined_engines"] == 1


# -- protocol error records ----------------------------------------------------------


class TestErrorRecords:
    def test_error_record_shape(self):
        record = error_record(
            "gemm", ValueError("boom"), code="bad-request", request_id="r1"
        )
        assert record == {
            "id": "r1",
            "kernel": "gemm",
            "error": "ValueError: boom",
            "code": "bad-request",
        }
        bare = error_record(None, RuntimeError("x"))
        assert "id" not in bare and "code" not in bare
        assert bare["kernel"] is None

    def test_malformed_request_lines_get_error_replies(self):
        lines = [
            "this is not json",
            "[1, 2, 3]",
            json.dumps({"kernel": "gemm", "sizes": "123"}),
            json.dumps(
                {"kernel": "gemm", "sizes": [12, 12, 12], "bogus": 1, "id": "x"}
            ),
            json.dumps({"cmd": "reboot"}),
        ]
        out = []
        served = serve_lines(lines, emit=out.append)
        assert served == len(lines)
        records = [json.loads(line) for line in out]
        assert all("error" in record for record in records)
        assert "JSON" in records[0]["error"] or "Expecting" in records[0]["error"]
        assert "JSON object" in records[1]["error"]
        assert "list of integers" in records[2]["error"]
        assert "unknown sweep request fields" in records[3]["error"]
        assert records[3]["id"] == "x"
        assert "unknown control command" in records[4]["error"]
        assert records[4]["code"] == "bad-request"
