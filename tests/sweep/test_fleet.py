"""Fleet coordinator tests: leases, stealing, eviction, bit-identical merges.

The coordinator logic is driven deterministically through scripted fake
replica clients (``client_factory``); the bit-identity suite then swaps in
real in-process :class:`SweepServer` replicas with seeded fault injection so
every single-replica-failure timing the fault plan can draw is proven to
merge bit-identically to the unsharded single-node run.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import ExplorationError
from repro.sweep import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FleetCoordinator,
    FleetError,
    SweepClient,
    SweepRequest,
    SweepServer,
    clone_checkpoint,
    format_announce,
    load_ranking,
    parse_announce,
    parse_attach,
    render_ranking,
)
from repro.sweep.fleet import launch_replica, stop_replica
from repro.sweep.server import result_record

REQUEST = {"kernel": "conv2d", "sizes": [8, 8, 5, 5, 3, 3], "max_candidates": 12}


# -- announce line / attach parsing ----------------------------------------------------


def test_announce_round_trip():
    line = format_announce("127.0.0.1", 7077)
    assert parse_announce(line) == ("127.0.0.1", 7077)
    # Embedded in surrounding log text, as the stderr pump sees it.
    assert parse_announce(f"...{line}\n") == ("127.0.0.1", 7077)


def test_parse_announce_rejects_garbage():
    assert parse_announce("tenet serve: backend=auto device=numpy") is None
    assert parse_announce("") is None


def test_parse_attach():
    assert parse_attach("127.0.0.1:7077") == [("127.0.0.1", 7077)]
    assert parse_attach("10.0.0.1:1, :2 ,127.0.0.1:3") == [
        ("10.0.0.1", 1),
        ("127.0.0.1", 2),
        ("127.0.0.1", 3),
    ]
    with pytest.raises(ExplorationError):
        parse_attach(" , ")


# -- checkpoint cloning ----------------------------------------------------------------


HEADER = json.dumps({"kind": "meta", "version": 1, "op": "x"})
# Pruned rather than "ok": the coordinator's final merge parses every lease
# generation file, and pruned records need no score/report payload.
RECORD = json.dumps(
    {"kind": "result", "signature": "s1", "name": "a", "status": "pruned", "bound": 1.0}
)


def test_clone_checkpoint_trims_torn_tail(tmp_path):
    source = tmp_path / "src.jsonl"
    source.write_text(HEADER + "\n" + RECORD + "\n" + '{"kind": "result", "sig')
    dest = tmp_path / "dest.jsonl"
    assert clone_checkpoint(source, dest) == 1
    # Complete lines only: the torn fragment of the dying writer is dropped.
    assert dest.read_text() == HEADER + "\n" + RECORD + "\n"


def test_clone_checkpoint_missing_source(tmp_path):
    dest = tmp_path / "dest.jsonl"
    assert clone_checkpoint(tmp_path / "nope.jsonl", dest) == 0
    # A lease that died before its header clones nothing: resuming the absent
    # file is simply a fresh sweep.
    assert not dest.exists()


def test_clone_checkpoint_header_only(tmp_path):
    source = tmp_path / "src.jsonl"
    source.write_text(HEADER + "\n")
    dest = tmp_path / "dest.jsonl"
    assert clone_checkpoint(source, dest) == 0
    assert dest.read_text() == HEADER + "\n"


# -- client abort ----------------------------------------------------------------------


def test_abort_unblocks_blocking_request():
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    accepted = []
    threading.Thread(
        target=lambda: accepted.append(listener.accept()), daemon=True
    ).start()
    client = SweepClient("127.0.0.1", port, timeout=60.0, reconnect_retries=0)
    errors = []
    started = threading.Event()

    def blocked():
        started.set()
        try:
            client.request({"cmd": "stats"})
        except ExplorationError as error:
            errors.append(error)

    thread = threading.Thread(target=blocked)
    thread.start()
    assert started.wait(10)
    time.sleep(0.2)  # let the request reach its blocking read
    begun = time.monotonic()
    client.abort()
    thread.join(10)
    assert not thread.is_alive(), "abort() did not unblock the request"
    assert time.monotonic() - begun < 10
    assert errors, "aborted request should surface an ExplorationError"
    client.close()
    listener.close()


# -- server-side checkpoints -----------------------------------------------------------


def test_request_checkpoint_field_validation():
    request = SweepRequest.from_dict({**REQUEST, "checkpoint": "a.jsonl", "resume": True})
    assert request.checkpoint == "a.jsonl"
    assert request.resume is True
    with pytest.raises(ExplorationError, match="checkpoint"):
        SweepRequest.from_dict({**REQUEST, "checkpoint": 5})


def test_server_without_root_refuses_checkpointed_requests():
    with SweepServer() as server:
        request = SweepRequest.from_dict({**REQUEST, "checkpoint": "a.jsonl"})
        with pytest.raises(ExplorationError, match="checkpoint root"):
            server.submit(request).result()


@pytest.mark.parametrize("name", ["../evil.jsonl", "/tmp/evil.jsonl", "a/../../b.jsonl"])
def test_server_confines_checkpoints_to_root(tmp_path, name):
    with SweepServer(checkpoint_root=tmp_path) as server:
        request = SweepRequest.from_dict({**REQUEST, "checkpoint": name})
        with pytest.raises(ExplorationError, match="escapes"):
            server.submit(request).result()


def test_server_checkpoint_write_and_resume(tmp_path):
    with SweepServer(checkpoint_root=tmp_path) as server:
        request = SweepRequest.from_dict({**REQUEST, "checkpoint": "lease.jsonl"})
        first, reused = server.submit(request).result()
        assert (tmp_path / "lease.jsonl").exists()
        assert first.skipped == 0 and first.evaluated_count > 0
        # Re-issued lease: everything recorded is skipped, nothing re-evaluated.
        resumed_request = SweepRequest.from_dict(
            {**REQUEST, "checkpoint": "lease.jsonl", "resume": True}
        )
        resumed, _ = server.submit(resumed_request).result()
        assert resumed.evaluated_count == 0
        assert resumed.skipped == first.num_candidates
        # The wire record carries the resume evidence the coordinator asserts.
        record = result_record(resumed_request, resumed, reused)
        assert record["skipped"] == first.num_candidates
        # Rankings agree: restored-from-checkpoint vs freshly evaluated.
        assert render_ranking(resumed.ranking) == render_ranking(first.ranking)


# -- coordinator with scripted fake replicas -------------------------------------------


class FakeReplicaClient:
    """One scripted client connection; behavior is per-replica-host."""

    def __init__(self, behavior, host, port, timeout):
        self._behavior = behavior
        self.host, self.port, self.timeout = host, port, timeout

    def request(self, payload):
        return self._behavior(self.host, dict(payload), self.timeout)

    def close(self):
        pass

    def abort(self):
        pass


def make_factory(behavior):
    return lambda host, port, timeout: FakeReplicaClient(behavior, host, port, timeout)


def ok_record(payload):
    return {"id": payload.get("id"), "candidates": 2, "skipped": 0, "top": []}


def test_coordinator_validates_inputs(tmp_path):
    with pytest.raises(FleetError, match="replica"):
        FleetCoordinator(dict(REQUEST), shards=2, checkpoint_dir=tmp_path)
    with pytest.raises(FleetError, match="shard"):
        FleetCoordinator(
            dict(REQUEST), shards=0, checkpoint_dir=tmp_path, attach=[("h", 1)]
        )
    with pytest.raises(FleetError, match="reserved|owns"):
        FleetCoordinator(
            {**REQUEST, "shard": [0, 2]},
            shards=2,
            checkpoint_dir=tmp_path,
            attach=[("h", 1)],
        )
    # A malformed base request fails fast at construction, not N times on wire.
    with pytest.raises(ExplorationError, match="unknown"):
        FleetCoordinator(
            {**REQUEST, "bogus": 1},
            shards=2,
            checkpoint_dir=tmp_path,
            attach=[("h", 1)],
        )


def test_coordinator_dispatches_every_lease(tmp_path):
    seen = []
    lock = threading.Lock()

    def behavior(host, payload, timeout):
        with lock:
            seen.append((host, payload, timeout))
        return ok_record(payload)

    coordinator = FleetCoordinator(
        dict(REQUEST),
        shards=4,
        checkpoint_dir=tmp_path,
        attach=[("a", 1), ("b", 2)],
        lease_timeout=123.0,
        heartbeat_interval=0,
        client_factory=make_factory(behavior),
    )
    result = coordinator.run()
    assert result.steals == 0 and result.evictions == 0
    assert all(lease.state == "done" for lease in result.leases)
    assert result.processed == 2 * 4
    payloads = sorted((p for _, p, _ in seen), key=lambda p: p["id"])
    assert [p["shard"] for p in payloads] == [[i, 4] for i in range(4)]
    assert [p["checkpoint"] for p in payloads] == [
        f"lease-{i:04d}.g0.jsonl" for i in range(4)
    ]
    assert [p["id"] for p in payloads] == [f"lease-{i:04d}-g0" for i in range(4)]
    assert all(p["resume"] is True for p in payloads)
    assert all(p["kernel"] == REQUEST["kernel"] for p in payloads)
    assert all(t == 123.0 for _, _, t in seen)


def test_steal_reissues_next_generation_with_clone(tmp_path):
    # Pre-write lease 0's g0 checkpoint so the steal has something to clone.
    g0 = tmp_path / "lease-0000.g0.jsonl"
    g0.write_text(HEADER + "\n" + RECORD + "\n")
    calls = []
    lock = threading.Lock()

    def behavior(host, payload, timeout):
        with lock:
            calls.append(payload)
            if len(calls) == 1:
                raise ExplorationError("injected lease failure")
        return ok_record(payload)

    coordinator = FleetCoordinator(
        dict(REQUEST),
        shards=2,
        checkpoint_dir=tmp_path,
        attach=[("a", 1)],
        heartbeat_interval=0,
        max_consecutive_failures=5,
        client_factory=make_factory(behavior),
    )
    result = coordinator.run()
    assert result.steals == 1 and result.evictions == 0
    lease = result.leases[0]
    assert lease.state == "done"
    assert lease.generation == 1
    assert [path.name for path in lease.files] == [
        "lease-0000.g0.jsonl",
        "lease-0000.g1.jsonl",
    ]
    # The clone carried g0's durable records into the new generation.
    assert (tmp_path / "lease-0000.g1.jsonl").read_text() == g0.read_text()
    retry = [p for p in calls if p["id"] == "lease-0000-g1"]
    assert retry and retry[0]["checkpoint"] == "lease-0000.g1.jsonl"
    assert retry[0]["resume"] is True


def test_replica_evicted_after_consecutive_failures(tmp_path):
    # The good replica parks until the bad one has failed twice: otherwise
    # the good worker can drain every lease before the bad worker pulls its
    # second, leaving consecutive_failures at 1 and nothing evicted.
    bad_failures = []
    bad_done = threading.Event()

    def behavior(host, payload, timeout):
        if host == "bad":
            bad_failures.append(payload["id"])
            if len(bad_failures) >= 2:
                bad_done.set()
            raise ExplorationError("injected: replica down")
        assert bad_done.wait(10.0), "bad replica never reached two failures"
        return ok_record(payload)

    coordinator = FleetCoordinator(
        dict(REQUEST),
        shards=3,
        checkpoint_dir=tmp_path,
        attach=[("bad", 1), ("good", 2)],
        heartbeat_interval=0,
        max_consecutive_failures=2,
        client_factory=make_factory(behavior),
    )
    result = coordinator.run()
    assert all(lease.state == "done" for lease in result.leases)
    assert result.evictions == 1
    bad = [r for r in result.replicas if r.name == "attached-0"][0]
    assert bad.evicted and "consecutive" in bad.evicted_reason
    assert bad.consecutive_failures == 2
    assert result.steals >= 2
    good = [r for r in result.replicas if r.name == "attached-1"][0]
    assert good.leases_completed == 3


def test_all_replicas_evicted_raises_fleet_error(tmp_path):
    def behavior(host, payload, timeout):
        raise ExplorationError("injected: everything is down")

    coordinator = FleetCoordinator(
        dict(REQUEST),
        shards=2,
        checkpoint_dir=tmp_path,
        attach=[("a", 1), ("b", 2)],
        heartbeat_interval=0,
        max_consecutive_failures=1,
        client_factory=make_factory(behavior),
    )
    with pytest.raises(FleetError, match="evicted"):
        coordinator.run()


def test_monitor_evicts_dead_replica_and_aborts_its_lease(tmp_path):
    """Heartbeat eviction must abort the in-flight lease, not wait it out."""
    release = threading.Event()

    class BlockingLeaseClient:
        def __init__(self):
            self.aborted = False

        def request(self, payload):
            if payload.get("cmd") == "stats":
                raise ExplorationError("injected: heartbeat refused")
            if not release.wait(30):
                raise AssertionError("lease was never aborted")
            raise ExplorationError("injected: connection aborted")

        def close(self):
            pass

        def abort(self):
            self.aborted = True
            release.set()

    blocking = BlockingLeaseClient()

    def factory(host, port, timeout):
        if host == "dead":
            return blocking
        return FakeReplicaClient(
            lambda h, p, t: ok_record(p)
            if p.get("cmd") != "stats"
            else {"engines": 1},
            host,
            port,
            timeout,
        )

    coordinator = FleetCoordinator(
        dict(REQUEST),
        shards=2,
        checkpoint_dir=tmp_path,
        attach=[("dead", 1), ("live", 2)],
        heartbeat_interval=0.05,
        heartbeat_timeout=1.0,
        max_consecutive_failures=2,
        client_factory=factory,
    )
    result = coordinator.run()
    assert blocking.aborted, "eviction never aborted the in-flight lease"
    assert result.evictions >= 1
    assert result.steals >= 1
    assert all(lease.state == "done" for lease in result.leases)
    dead = [r for r in result.replicas if r.name == "attached-0"][0]
    assert dead.evicted and "heartbeat" in dead.evicted_reason


# -- bit-identity under every failure timing -------------------------------------------


class LocalServerClient:
    """Drive an in-process :class:`SweepServer` through the client interface.

    Converts every failure (including injected ones) into the
    :class:`ExplorationError` a networked client would surface, so the
    coordinator exercises its real revoke/steal path without sockets.
    """

    def __init__(self, server):
        self._server = server

    def request(self, payload):
        data = dict(payload)
        data.pop("id", None)
        if data.get("cmd") == "stats":
            return self._server.stats()
        request = SweepRequest.from_dict(data)
        try:
            result, reused = self._server.submit(request).result()
        except ExplorationError:
            raise
        except Exception as error:
            raise ExplorationError(f"replica died: {error}") from error
        return result_record(request, result, reused)

    def close(self):
        pass

    def abort(self):
        pass


def fleet_reference(tmp_path):
    ref_dir = tmp_path / "reference"
    ref_dir.mkdir()
    with SweepServer(checkpoint_root=ref_dir) as server:
        request = SweepRequest.from_dict({**REQUEST, "checkpoint": "ref.jsonl"})
        server.submit(request).result()
    return render_ranking(load_ranking(ref_dir / "ref.jsonl"))


@pytest.mark.slow
def test_merge_bit_identical_under_every_failure_timing(tmp_path):
    """Kill replica A at *every* record the fault plan can draw; always merge
    bit-identical to the unsharded single-node run.

    ``sink.write``/``error`` (not ``kill``) — the replicas are in-process, an
    ``os._exit`` would take the test runner down with them.  The injector
    counts events per replica across leases, so the sweep over ``at`` covers
    failures early in a lease, late in a lease, and on replica A's later
    leases — plus one timing past the end where the fault never fires.
    """
    reference = fleet_reference(tmp_path)
    total = SweepRequest.from_dict(dict(REQUEST)).build()[2].dedupe()
    total = sum(1 for _ in total)
    shards = 3
    for at in range(1, total + 2):
        workdir = tmp_path / f"at-{at}"
        workdir.mkdir()
        plan = FaultPlan(specs=[FaultSpec("sink.write", "error", at=at)])
        with SweepServer(
            checkpoint_root=workdir, fault_injector=FaultInjector(plan)
        ) as flaky, SweepServer(checkpoint_root=workdir) as healthy:
            clients = {"flaky": LocalServerClient(flaky), "healthy": LocalServerClient(healthy)}
            coordinator = FleetCoordinator(
                dict(REQUEST),
                shards=shards,
                checkpoint_dir=workdir,
                attach=[("flaky", 1), ("healthy", 2)],
                heartbeat_interval=0,
                max_consecutive_failures=10,
                client_factory=lambda host, port, timeout: clients[host],
            )
            result = coordinator.run()
        assert all(lease.state == "done" for lease in result.leases)
        merged = render_ranking(result.ranking)
        assert merged == reference, (
            f"fault at sink.write #{at}: merged ranking diverged "
            f"({result.steals} steal(s))"
        )


def test_fleet_ranking_merges_all_generations(tmp_path):
    """A clean two-replica fleet over real servers merges bit-identically."""
    reference = fleet_reference(tmp_path)
    workdir = tmp_path / "fleet"
    workdir.mkdir()
    with SweepServer(checkpoint_root=workdir) as a, SweepServer(
        checkpoint_root=workdir
    ) as b:
        clients = {"a": LocalServerClient(a), "b": LocalServerClient(b)}
        coordinator = FleetCoordinator(
            dict(REQUEST),
            shards=3,
            checkpoint_dir=workdir,
            attach=[("a", 1), ("b", 2)],
            heartbeat_interval=0,
            client_factory=lambda host, port, timeout: clients[host],
        )
        result = coordinator.run()
    assert result.steals == 0
    assert render_ranking(result.ranking) == reference
    assert result.processed == sum(
        lease.record["candidates"] for lease in result.leases
    )


# -- real subprocess replica -----------------------------------------------------------


@pytest.mark.slow
def test_launch_replica_round_trip(tmp_path):
    process, host, port = launch_replica(checkpoint_root=tmp_path)
    try:
        with SweepClient(host, port, timeout=60.0) as client:
            stats = client.request({"cmd": "stats"})
        assert "engines" in stats
    finally:
        stop_replica(process)
    assert process.returncode == 0
