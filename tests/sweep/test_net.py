"""Tests for the networked sweep service: TCP transport, fairness, client."""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.errors import ExplorationError
from repro.sweep import SweepClient, SweepService, iter_lines, parse_listen, serve_lines


def request_line(**overrides):
    data = {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
    data.update(overrides)
    return json.dumps(data)


def wait_until(predicate, timeout=20.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def free_port():
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServiceHarness:
    """Run a :class:`SweepService` TCP loop on a background thread."""

    def __init__(self, run_request=None, **service_kwargs):
        self.service = SweepService(**service_kwargs)
        if run_request is not None:
            self.service._run_request = run_request
        self.host = None
        self.port = None
        self.loop = None
        self.served = None
        self.error = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._requested_port = 0

    def _announce(self, host, port):
        self.host, self.port = host, port
        self._ready.set()

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            try:
                self.served = await self.service.serve_tcp(
                    "127.0.0.1", self._requested_port, announce=self._announce
                )
            finally:
                await self.service.aclose()

        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            self.error = error
        finally:
            self._ready.set()

    def start(self, port=0):
        self._requested_port = port
        self._thread.start()
        assert self._ready.wait(30), "service never announced its address"
        if self.error is not None:
            raise self.error
        return self

    def call(self, fn, *args):
        self.loop.call_soon_threadsafe(fn, *args)

    def stop(self, timeout=30.0):
        if self._thread.is_alive() and self.loop is not None:
            self.loop.call_soon_threadsafe(self.service.request_drain)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service thread did not drain"
        if self.error is not None:
            raise self.error

    def client(self, **kwargs):
        return SweepClient(self.host, self.port, **kwargs)


@pytest.fixture
def harness():
    started = []

    def factory(**kwargs):
        instance = ServiceHarness(**kwargs).start()
        started.append(instance)
        return instance

    yield factory
    for instance in started:
        instance.stop()


def gated_run_request(gate, started, block_first=1):
    """A fake ``_run_request``: records dispatch order, gates early calls.

    The ``top`` field of each request doubles as its marker in ``started``.
    The first ``block_first`` dispatches wait on ``gate`` (set it via
    ``harness.call(gate.set)``), so tests can deterministically pile requests
    up behind an in-flight one.
    """

    async def run(request):
        started.append(request.top)
        if len(started) <= block_first:
            await asyncio.wait_for(gate.wait(), timeout=30)
        return {"kernel": request.kernel, "top": request.top}

    return run


class TestParseListen:
    def test_host_port(self):
        assert parse_listen("0.0.0.0:7077") == ("0.0.0.0", 7077)

    def test_defaults_host_to_loopback(self):
        assert parse_listen(":0") == ("127.0.0.1", 0)

    def test_rejects_garbage(self):
        for bad in ("7077", "host:", "host:notaport", "host:70777"):
            with pytest.raises(ExplorationError):
                parse_listen(bad)


class TestSweepClientRoundTrips:
    def test_connect_sweep_close_and_warm_reuse(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            first = client.sweep("gemm", [12, 12, 12], max_candidates=4)
            assert first["engine_reused"] is False
            assert first["top"] and first["evaluated"]
            second = client.sweep(
                "gemm", [12, 12, 12], max_candidates=4, objective="energy"
            )
            assert second["engine_reused"] is True
            assert second["objective"] == "energy"
        assert not client.connected

    def test_stats_control_request(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            client.sweep("gemm", [12, 12, 12], max_candidates=4)
            client.sweep("gemm", [12, 12, 12], max_candidates=4, objective="edp")
            stats = client.stats()
        assert stats["cmd"] == "stats"
        assert stats["engines"] == 1
        assert stats["requests"]["served"] == 2
        assert stats["engine_reused_rate"] == 0.5
        assert stats["connections"] >= 1
        assert stats["draining"] is False
        assert isinstance(stats["queue_depths"], dict)

    def test_sweep_error_record_raises_with_record(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            with pytest.raises(ExplorationError, match="rejected") as excinfo:
                client.sweep("bogus-kernel", [4])
            assert "error" in excinfo.value.record
            # The connection stays usable after a server-side error reply.
            assert client.sweep("gemm", [12, 12, 12], max_candidates=4)["top"]

    def test_reconnect_retry_after_server_restart(self):
        port = free_port()
        first = ServiceHarness(max_workers=2).start(port=port)
        client = SweepClient("127.0.0.1", port, timeout=30.0)
        try:
            assert client.sweep("gemm", [12, 12, 12], max_candidates=4)["top"]
            first.stop()
            second = ServiceHarness(max_workers=2).start(port=port)
            try:
                # The old socket is dead; request() reconnects and retries.
                record = client.sweep("gemm", [12, 12, 12], max_candidates=4)
                assert record["engine_reused"] is False
            finally:
                client.close()
                second.stop()
        finally:
            client.close()

    def test_unreachable_server_raises_exploration_error(self):
        client = SweepClient("127.0.0.1", free_port(), timeout=2.0)
        with pytest.raises(ExplorationError, match="unreachable"):
            client.request({"cmd": "stats"})


class TestPipelining:
    def test_pipelined_request_ids_echoed_in_order(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            ids = [
                client.submit(
                    {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
                )
                for _ in range(4)
            ]
            assert client.pending == 4
            records = client.drain()
        assert [record["id"] for record in records] == ids
        assert [record["engine_reused"] for record in records] == [
            False,
            True,
            True,
            True,
        ]

    def test_blocking_request_refused_while_pipelining(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            client.submit(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            )
            with pytest.raises(ExplorationError, match="outstanding"):
                client.stats()
            client.drain()


class TestFairness:
    def test_round_robin_interleaves_a_single_request_past_a_pipeliner(self, harness):
        started = []
        gate = asyncio.Event()
        service = harness(
            run_request=gated_run_request(gate, started),
            max_inflight=1,
            queue_depth=64,
        )
        pipeliner = service.client()
        single = service.client()
        monitor = service.client()
        try:
            for index in range(4):
                pipeliner.submit(
                    {
                        "kernel": "gemm",
                        "sizes": [8, 8, 8],
                        "top": 10 + index,
                        "id": f"a{index}",
                    }
                )
            # The head request is in flight (gated); the rest are queued.
            wait_until(
                lambda: monitor.stats()["in_flight"] == 1
                and sum(monitor.stats()["queue_depths"].values()) == 3,
                message="pipeliner head in flight with 3 queued",
            )
            single.submit(
                {"kernel": "gemm", "sizes": [8, 8, 8], "top": 20, "id": "b0"}
            )
            wait_until(
                lambda: sum(monitor.stats()["queue_depths"].values()) == 4,
                message="single request queued",
            )
            service.call(gate.set)
            single_records = single.drain()
            pipeliner_records = pipeliner.drain()
        finally:
            for client in (pipeliner, single, monitor):
                client.close()
        # Round-robin: after the in-flight head and one more pipeliner
        # request, the single client's request runs — it cannot be starved
        # behind the pipeliner's tail.
        assert started == [10, 11, 20, 12, 13]
        assert [record["id"] for record in pipeliner_records] == ["a0", "a1", "a2", "a3"]
        assert single_records[0]["id"] == "b0"

    def test_queue_depth_limit_returns_structured_overload(self, harness):
        started = []
        gate = asyncio.Event()
        service = harness(
            run_request=gated_run_request(gate, started),
            max_inflight=1,
            queue_depth=2,
        )
        client = service.client()
        monitor = service.client()
        try:
            client.submit({"kernel": "gemm", "sizes": [8, 8, 8], "top": 1, "id": "q1"})
            wait_until(
                lambda: monitor.stats()["in_flight"] == 1,
                message="head request in flight",
            )
            for index in range(2, 6):
                client.submit(
                    {"kernel": "gemm", "sizes": [8, 8, 8], "top": index, "id": f"q{index}"}
                )
            wait_until(
                lambda: monitor.stats()["requests"]["rejected"] == 2,
                message="two overload rejections",
            )
            service.call(gate.set)
            records = client.drain()
        finally:
            client.close()
            monitor.close()
        assert [record["id"] for record in records] == [f"q{i}" for i in range(1, 6)]
        assert [record.get("code") for record in records] == [
            None,
            None,
            None,
            "overloaded",
            "overloaded",
        ]
        assert all("error" in record for record in records if record.get("code"))
        # Only the admitted requests ever reached the engine scheduler.
        assert sorted(started) == [1, 2, 3]


class TestProtocolRobustness:
    def test_malformed_json_gets_error_reply_and_connection_survives(self, harness):
        service = harness(max_workers=2)
        with socket.create_connection((service.host, service.port), timeout=30) as sock:
            sock.settimeout(30)
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            error_reply = json.loads(reader.readline())
            assert "error" in error_reply and "JSONDecodeError" in error_reply["error"]
            sock.sendall((request_line() + "\n").encode("utf-8"))
            record = json.loads(reader.readline())
            assert record["top"] and record["kernel"] == "gemm"

    def test_unknown_control_command_rejected(self, harness):
        service = harness(max_workers=2)
        with service.client() as client:
            reply = client.request({"cmd": "reboot", "id": 7})
            assert reply["code"] == "bad-request"
            assert reply["id"] == 7

    def test_blank_and_comment_lines_ignored(self, harness):
        service = harness(max_workers=2)
        with socket.create_connection((service.host, service.port), timeout=30) as sock:
            sock.settimeout(30)
            reader = sock.makefile("rb")
            sock.sendall(b"\n# warmup comment\n" + (request_line() + "\n").encode())
            record = json.loads(reader.readline())
            assert record["kernel"] == "gemm"


class TestGracefulDrain:
    def test_drain_answers_accepted_work_and_refuses_new(self, harness):
        started = []
        gate = asyncio.Event()
        service = harness(
            run_request=gated_run_request(gate, started),
            max_inflight=1,
        )
        client = service.client()
        monitor = service.client()
        try:
            for index in range(3):
                client.submit(
                    {"kernel": "gemm", "sizes": [8, 8, 8], "top": index, "id": f"d{index}"}
                )
            wait_until(
                lambda: monitor.stats()["in_flight"] == 1,
                message="head request in flight",
            )
            service.call(service.service.request_drain)
            wait_until(
                lambda: monitor.stats()["draining"] is True, message="draining flag"
            )
            # New requests on an existing connection get a structured refusal.
            client.submit(
                {"kernel": "gemm", "sizes": [8, 8, 8], "top": 99, "id": "late"}
            )
            # New connections are refused outright.
            with pytest.raises(OSError):
                socket.create_connection((service.host, service.port), timeout=2)
            service.call(gate.set)
            records = client.drain()
        finally:
            client.close()
            monitor.close()
        assert [record["id"] for record in records] == ["d0", "d1", "d2", "late"]
        assert [record.get("code") for record in records] == [
            None,
            None,
            None,
            "draining",
        ]
        # Everything accepted before the drain was answered, nothing dropped.
        assert sorted(started) == [0, 1, 2]
        service.stop()
        assert service.served >= 4


class TestBackpressureAndTimeouts:
    def test_reader_pauses_when_peer_stops_reading_responses(self):
        # A client that floods requests and never reads replies must not grow
        # the response backlog without bound: past ``write_backlog`` unwritten
        # responses the reader stops consuming lines until writes progress.
        class BlockedWriteChannel:
            def __init__(self, lines):
                self._lines = iter(lines)
                self.read_count = 0
                self.release = asyncio.Event()
                self.written = []

            async def read_line(self):
                try:
                    line = next(self._lines)
                except StopIteration:
                    return None
                self.read_count += 1
                return line

            async def write_line(self, line):
                await self.release.wait()
                self.written.append(line)

            async def close(self):
                return None

        flood = ["not json"] * 200

        async def scenario():
            service = SweepService(max_inflight=1, queue_depth=1)
            service.write_backlog = 8
            channel = BlockedWriteChannel(flood)
            try:
                handler = asyncio.create_task(service.handle_channel(channel))
                await asyncio.sleep(0.2)
                paused_at = channel.read_count
                # reader stalled at the backlog limit, not the full flood
                assert paused_at < len(flood)
                assert paused_at <= service.write_backlog + 2
                await asyncio.sleep(0.05)
                assert channel.read_count == paused_at, "reader kept consuming"
                channel.release.set()
                served = await asyncio.wait_for(handler, timeout=30)
                assert served == len(flood)
                assert len(channel.written) == len(flood)
            finally:
                await service.aclose()

        asyncio.run(scenario())

    def test_client_timeout_raises_without_resend(self, harness):
        started = []
        gate = asyncio.Event()
        service = harness(
            run_request=gated_run_request(gate, started), max_inflight=1
        )
        client = service.client(timeout=0.5)
        try:
            with pytest.raises(ExplorationError, match="did not answer"):
                client.request({"kernel": "gemm", "sizes": [8, 8, 8], "top": 1})
            # One dispatch only: the timed-out request was not resent.
            assert started == [1]
        finally:
            service.call(gate.set)
            client.close()


class TestDrainBeforeStart:
    def test_sigterm_before_listener_starts_still_exits(self):
        service = ServiceHarness(max_workers=1)
        # Simulate SIGTERM landing before serve_tcp created the listener.
        service.service.request_drain()
        service.start()
        service._thread.join(20)
        assert not service._thread.is_alive(), "pre-start drain was lost"
        assert service.error is None


class TestStdioTcpParity:
    #: Per-run wall-clock fields; everything else must match byte for byte.
    VOLATILE = ("seconds", "candidates_per_second")

    def normalised(self, record):
        return {key: value for key, value in record.items() if key not in self.VOLATILE}

    def test_tcp_records_match_stdio_records(self):
        lines = [
            request_line(),
            request_line(objective="energy"),
            json.dumps({"kernel": "bogus", "sizes": [4]}),
        ]
        stdio_out = []
        served = serve_lines(lines, emit=stdio_out.append)
        assert served == 3
        tcp_harness = ServiceHarness(max_workers=2).start()
        try:
            with tcp_harness.client() as client:
                client.send_lines(lines)
                tcp_records = client.read_records(3)
        finally:
            tcp_harness.stop()
        stdio_records = [json.loads(line) for line in stdio_out]
        assert [list(record) for record in stdio_records] == [
            list(record) for record in tcp_records
        ]
        assert [
            json.dumps(self.normalised(record)) for record in stdio_records
        ] == [json.dumps(self.normalised(record)) for record in tcp_records]
        assert [record.get("engine_reused") for record in tcp_records] == [
            False,
            True,
            None,
        ]


class TestUnterminatedFinalLine:
    def test_iter_lines_yields_final_unterminated_line(self):
        stream = io.StringIO("first\nsecond")
        assert list(iter_lines(stream)) == ["first\n", "second"]

    def test_serve_lines_services_final_unterminated_request(self):
        # A pipe producer that exits without a trailing newline must still get
        # its last request serviced (mirrors the checkpoint torn-line
        # tolerance, except a complete JSON line is served, not dropped).
        stream = io.StringIO(request_line() + "\n" + request_line(objective="energy"))
        out = []
        served = serve_lines(iter_lines(stream), emit=out.append)
        assert served == 2
        records = [json.loads(line) for line in out]
        assert [record["objective"] for record in records] == ["latency", "energy"]
        assert records[1]["engine_reused"] is True

    def test_cli_requests_file_without_trailing_newline(self, capsys, tmp_path):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            request_line() + "\n" + request_line(objective="energy"),
            encoding="utf-8",
        )
        assert main(["serve", "--requests", str(requests)]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(records) == 2
        assert "served 2" in captured.err
