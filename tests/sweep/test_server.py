"""Tests for the warm-engine sweep server and the ``tenet serve`` protocol."""

import json
import time

import pytest

from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.sweep import SweepRequest, SweepServer, serve_lines
from repro.tensor.kernels import gemm


def request_line(**overrides):
    data = {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
    data.update(overrides)
    return json.dumps(data)


class TestSweepRequest:
    def test_from_dict_roundtrip(self):
        request = SweepRequest.from_dict(
            {"kernel": "gemm", "sizes": [12, 12, 12], "objective": "energy"}
        )
        assert request.sizes == (12, 12, 12)
        assert request.objective == "energy"

    def test_unknown_fields_rejected(self):
        with pytest.raises(ExplorationError, match="unknown sweep request fields"):
            SweepRequest.from_dict({"kernel": "gemm", "sizes": [8, 8, 8], "bogus": 1})

    def test_missing_kernel_rejected(self):
        with pytest.raises(ExplorationError, match="kernel"):
            SweepRequest.from_dict({"sizes": [8, 8, 8]})

    def test_shard_validated(self):
        with pytest.raises(ExplorationError):
            SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [8, 8, 8], "shard": [2, 2]}
            )


class TestSweepServer:
    def test_same_op_reuses_warm_engine(self):
        with SweepServer() as server:
            first = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            )
            second = SweepRequest.from_dict(
                {
                    "kernel": "gemm",
                    "sizes": [12, 12, 12],
                    "max_candidates": 4,
                    "objective": "energy",
                }
            )
            result_a, reused_a = server.submit(first).result()
            result_b, reused_b = server.submit(second).result()
            assert not reused_a and reused_b
            assert server.num_engines == 1
            assert result_a.evaluated and result_b.evaluated
            # The second sweep re-ranks memoised reports: no new evaluations.
            stats = server.stats()
            assert stats["requests_served"] == 2

    def test_memo_serves_repeated_requests(self):
        with SweepServer() as server:
            request = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 6}
            )
            server.submit(request).result()
            engine = next(iter(server._engines.values())).engine
            evaluated_before = engine.stats["evaluated"]
            server.submit(request).result()
            assert engine.stats["evaluated"] == evaluated_before
            assert engine.stats["memo_hits"] >= evaluated_before

    def test_different_ops_get_their_own_engines(self):
        with SweepServer() as server:
            a = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 3}
            )
            b = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [8, 8, 16], "max_candidates": 3}
            )
            futures = [server.submit(a), server.submit(b)]
            for future in futures:
                result, _ = future.result()
                assert result.evaluated
            assert server.num_engines == 2

    def test_submit_sweep_with_explicit_candidates(self):
        from repro.dse.pruning import pruned_candidates

        op = gemm(12, 12, 12)
        arch = make_arch(pe_dims=(8, 8))
        candidates = list(pruned_candidates(op, max_candidates=4))
        with SweepServer() as server:
            result = server.submit_sweep(op, arch, candidates).result()
            assert len(result.evaluated) == len(candidates)
            # A request for the same (op, arch) now reports the warm engine.
            request = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4,
                 "pe": [8, 8]}
            )
            _, reused = server.submit(request).result()
            assert reused

    def test_engine_registry_is_lru_bounded(self):
        with SweepServer(max_engines=2) as server:
            sizes = ([8, 8, 8], [8, 8, 12], [8, 8, 16])
            for s in sizes:
                request = SweepRequest.from_dict(
                    {"kernel": "gemm", "sizes": s, "max_candidates": 2}
                )
                server.submit(request).result()
            assert server.num_engines == 2
            # The most recent op is still warm.
            request = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [8, 8, 16], "max_candidates": 2}
            )
            _, reused = server.submit(request).result()
            assert reused

    def test_stats_track_engine_reuse_rate(self):
        with SweepServer() as server:
            request = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 4}
            )
            for _ in range(2):
                server.submit(request).result()
            stats = server.stats()
            assert stats["requests_submitted"] == 2
            assert stats["requests_reused"] == 1
            assert stats["engine_reused_rate"] == 0.5

    def test_submit_after_shutdown_rejected(self):
        server = SweepServer()
        server.shutdown()
        with pytest.raises(ExplorationError, match="shut down"):
            server.submit(
                SweepRequest.from_dict({"kernel": "gemm", "sizes": [8, 8, 8]})
            )

    def test_sharded_request_matches_direct_shard(self):
        with SweepServer() as server:
            full = SweepRequest.from_dict(
                {"kernel": "gemm", "sizes": [12, 12, 12], "max_candidates": 8}
            )
            result_full, _ = server.submit(full).result()
            halves = []
            for index in range(2):
                request = SweepRequest.from_dict(
                    {
                        "kernel": "gemm",
                        "sizes": [12, 12, 12],
                        "max_candidates": 8,
                        "shard": [index, 2],
                    }
                )
                result, _ = server.submit(request).result()
                halves.append(result)
            merged = sorted(
                (entry for result in halves for entry in result.ranking),
                key=lambda entry: entry.sort_key,
            )
            assert [(e.signature, e.score) for e in merged] == [
                (e.signature, e.score) for e in result_full.ranking
            ]


class TestServeLines:
    def test_serves_json_lines_in_order(self):
        out = []
        served = serve_lines(
            [request_line(), "", "# comment", request_line(objective="energy")],
            emit=out.append,
        )
        assert served == 2
        records = [json.loads(line) for line in out]
        assert [record["objective"] for record in records] == ["latency", "energy"]
        assert records[1]["engine_reused"] is True
        assert all(record["top"] for record in records)

    def test_streams_results_before_input_ends(self):
        # A long-lived producer must see results without closing its end:
        # once the head request finishes, its line is emitted even though
        # more input is still being read.
        out = []

        def producer():
            yield request_line()
            # Wait for the first request's result to drain before yielding
            # the next line, as a slow producer would.
            deadline = time.time() + 30
            while not out and time.time() < deadline:
                time.sleep(0.01)
            assert out, "no result emitted while the input stream was still open"
            yield request_line(objective="energy")

        served = serve_lines(producer(), emit=out.append)
        assert served == 2

    def test_failing_request_still_gets_one_output_line(self):
        # The 1:1 request/response protocol survives a bad request between
        # two good ones: the failure becomes an error record, not a dropped
        # line or a dead server.
        out = []
        served = serve_lines(
            [
                request_line(),
                json.dumps({"kernel": "bogus", "sizes": [4]}),
                "not even json",
                request_line(objective="energy"),
            ],
            emit=out.append,
        )
        assert served == 4
        records = [json.loads(line) for line in out]
        assert "top" in records[0] and "top" in records[3]
        assert "error" in records[1] and "error" in records[2]
        assert records[3]["engine_reused"] is True

    def test_result_record_fields(self):
        out = []
        serve_lines([request_line(top=2)], emit=out.append)
        record = json.loads(out[0])
        assert set(record) >= {
            "kernel",
            "objective",
            "evaluated",
            "seconds",
            "candidates_per_second",
            "top",
        }
        assert len(record["top"]) == 2
        assert {"name", "score", "latency_cycles"} <= set(record["top"][0])
