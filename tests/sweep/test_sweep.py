"""Tests for the streaming sweep pipeline: sources, session, sinks."""

import json

import pytest

from repro.core.engine import EvaluationEngine, RelationCache, dataflow_signature
from repro.dse.pruning import pruned_candidates
from repro.errors import ExplorationError
from repro.experiments.common import make_arch
from repro.sweep import (
    CandidateSource,
    JsonlCheckpointSink,
    SweepSession,
    TopKSink,
    load_ranking,
    parse_shard,
    render_ranking,
    signature_shard_index,
)
from repro.tensor.kernels import gemm


def make_op():
    return gemm(16, 16, 16)


def make_source(op, count=20):
    return CandidateSource(
        lambda: pruned_candidates(
            op, pe_dims=(4, 4), allow_packing=True, max_candidates=count
        ),
        name="pruned",
    )


def make_session(op, arch=None, **kwargs):
    arch = arch or make_arch(pe_dims=(4, 4))
    engine = EvaluationEngine(op, arch, cache=RelationCache())
    return SweepSession(engine, **kwargs)


def ranking_key(result_or_entries):
    entries = getattr(result_or_entries, "ranking", result_or_entries)
    return [(e.signature, e.name, e.score, e.data) for e in entries]


class TestCandidateSource:
    def test_source_is_reiterable(self):
        op = make_op()
        source = make_source(op, count=5)
        assert len(list(source)) == len(list(source)) == 5

    def test_limit_and_chain(self):
        op = make_op()
        source = make_source(op, count=6)
        assert len(list(source.limit(2))) == 2
        chained = source.limit(2).chain(source.limit(3))
        assert len(list(chained)) == 5

    def test_dedupe_drops_structural_duplicates(self):
        op = make_op()
        candidates = list(make_source(op, count=4))
        source = CandidateSource.wrap(candidates + candidates)
        assert len(list(source.dedupe())) == 4

    def test_shards_partition_exactly_once(self):
        # Every candidate lands in exactly one shard, for any shard count.
        op = make_op()
        source = make_source(op, count=20)
        full = [dataflow_signature(c) for c in source]
        for count in (2, 3, 5):
            shards = [
                [dataflow_signature(c) for c in source.shard(index, count)]
                for index in range(count)
            ]
            merged = [signature for shard in shards for signature in shard]
            assert sorted(merged) == sorted(full)
            assert len(merged) == len(full)

    def test_shard_assignment_is_stable(self):
        # The shard of a signature is a pure function of the signature text.
        op = make_op()
        for candidate in make_source(op, count=10):
            signature = dataflow_signature(candidate)
            assert signature_shard_index(signature, 4) == signature_shard_index(
                signature, 4
            )

    def test_shard_commutes_with_dedupe(self):
        op = make_op()
        candidates = list(make_source(op, count=8))
        source = CandidateSource.wrap(candidates + candidates)
        a = [dataflow_signature(c) for c in source.dedupe().shard(0, 2)]
        b = [dataflow_signature(c) for c in source.shard(0, 2).dedupe()]
        assert a == b

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "x/2", "1", "1/0"):
            with pytest.raises(ExplorationError):
                parse_shard(bad)


class TestSweepSession:
    def test_streaming_batches_match_single_batch(self):
        # Batch size never changes the outcome, only the streaming granularity.
        op = make_op()
        candidates = list(make_source(op, count=12))
        big = make_session(op, batch_size=1024).run(candidates)
        small = make_session(op, batch_size=3).run(candidates)
        assert small.batches > big.batches
        assert ranking_key(small) == ranking_key(big)

    def test_early_termination_decisions_survive_batching(self):
        # The running best threads through evaluate_batch calls, so pruning
        # decisions are identical whatever the batch size (serial engine).
        op = make_op()
        candidates = list(make_source(op, count=12))
        one = make_session(op, batch_size=1024, early_termination=True,
                           objective="sbw").run(candidates)
        streamed = make_session(op, batch_size=2, early_termination=True,
                                objective="sbw").run(candidates)
        assert sorted(streamed.pruned) == sorted(one.pruned)
        assert ranking_key(streamed) == ranking_key(one)

    def test_duplicates_counted(self):
        op = make_op()
        candidates = list(make_source(op, count=4))
        result = make_session(op).run(candidates + candidates)
        assert result.duplicates == 4
        assert len(result.evaluated) == 4

    def test_sharded_sweeps_merge_to_unsharded_ranking(self, tmp_path):
        op = make_op()
        source = make_source(op, count=20)
        full = make_session(op, checkpoint=str(tmp_path / "full.jsonl")).run(source)
        shard_paths = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.jsonl")
            shard_paths.append(path)
            result = make_session(op, checkpoint=path).run(source, shard=(index, 2))
            assert result.shard == (index, 2)
            assert result.sharded_out > 0
        merged = load_ranking(shard_paths)
        reference = load_ranking(tmp_path / "full.jsonl")
        assert ranking_key(merged) == ranking_key(reference)
        assert ranking_key(merged) == ranking_key(full)
        assert render_ranking(merged) == render_ranking(reference)

    def test_resume_after_kill_is_bit_identical(self, tmp_path):
        op = make_op()
        source = make_source(op, count=20)
        checkpoint = str(tmp_path / "sweep.jsonl")
        clean = make_session(op).run(source)

        # Simulate a killed sweep: only the first 7 candidates were processed.
        make_session(op, checkpoint=checkpoint).run(source.limit(7))
        resumed = make_session(op, checkpoint=checkpoint, resume=True).run(source)
        assert resumed.skipped == 7
        assert len(resumed.evaluated) == len(clean.evaluated) - 7
        assert ranking_key(resumed) == ranking_key(clean)

    def test_resume_tolerates_torn_final_line(self, tmp_path):
        op = make_op()
        source = make_source(op, count=10)
        checkpoint = tmp_path / "sweep.jsonl"
        make_session(op, checkpoint=str(checkpoint)).run(source.limit(5))
        # A kill mid-write leaves a truncated, newline-less record at the end.
        with checkpoint.open("a") as handle:
            handle.write('{"kind": "result", "signature": "tr')
        resumed = make_session(op, checkpoint=str(checkpoint), resume=True).run(source)
        clean = make_session(op).run(source)
        assert ranking_key(resumed) == ranking_key(clean)
        # The resumed records were not concatenated onto the torn fragment:
        # every line except the fragment parses, and the merged file ranks
        # identically to the clean run.
        lines = checkpoint.read_text().splitlines()
        unparseable = 0
        for line in lines:
            try:
                json.loads(line)
            except json.JSONDecodeError:
                unparseable += 1
        assert unparseable == 1
        assert ranking_key(load_ranking(checkpoint)) == ranking_key(clean)

    def test_load_ranking_tolerates_torn_final_line(self, tmp_path):
        # sweep-merge of a killed shard's checkpoint must not crash.
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        result = make_session(op, checkpoint=str(checkpoint)).run(
            make_source(op, count=5)
        )
        with checkpoint.open("a") as handle:
            handle.write('{"kind": "result", "signature": "tr')
        assert ranking_key(load_ranking(checkpoint)) == ranking_key(result)

    def test_resume_refuses_foreign_checkpoint(self, tmp_path):
        checkpoint = str(tmp_path / "sweep.jsonl")
        make_session(make_op(), checkpoint=checkpoint).run(make_source(make_op(), 3))
        other_op = gemm(8, 8, 24)
        with pytest.raises(ExplorationError, match="different sweep"):
            make_session(other_op, checkpoint=checkpoint, resume=True).run(
                make_source(other_op, 3)
            )

    def test_resume_refuses_early_termination_mismatch(self, tmp_path):
        # Pruned records only exist under early termination; resuming in the
        # other mode would silently skip candidates the sweep owes a score.
        op = make_op()
        checkpoint = str(tmp_path / "sweep.jsonl")
        make_session(op, early_termination=True, objective="sbw",
                     checkpoint=checkpoint).run(make_source(op, 6))
        with pytest.raises(ExplorationError, match="different sweep"):
            make_session(op, objective="sbw", checkpoint=checkpoint,
                         resume=True).run(make_source(op, 6))

    def test_resume_refuses_shard_mismatch(self, tmp_path):
        # Resuming a shard-0 checkpoint as shard 1 would merge foreign results.
        op = make_op()
        checkpoint = str(tmp_path / "sweep.jsonl")
        make_session(op, checkpoint=checkpoint).run(make_source(op, 6), shard=(0, 2))
        with pytest.raises(ExplorationError, match="different sweep"):
            make_session(op, checkpoint=checkpoint, resume=True).run(
                make_source(op, 6), shard=(1, 2)
            )

    def test_existing_checkpoint_refused_without_resume(self, tmp_path):
        # Re-running without --resume must not silently truncate hours of
        # recorded sweep results.
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        make_session(op, checkpoint=str(checkpoint)).run(make_source(op, 3))
        recorded = checkpoint.read_text()
        with pytest.raises(ExplorationError, match="already exists"):
            make_session(op, checkpoint=str(checkpoint)).run(make_source(op, 3))
        assert checkpoint.read_text() == recorded

    def test_top_raises_on_restored_entries(self, tmp_path):
        # top() must not silently return the live tail as if it were the
        # sweep's true top-k after a resume.
        op = make_op()
        checkpoint = str(tmp_path / "sweep.jsonl")
        source = make_source(op, count=10)
        make_session(op, checkpoint=checkpoint).run(source.limit(6))
        resumed = make_session(op, checkpoint=checkpoint, resume=True).run(source)
        with pytest.raises(ExplorationError, match="result.ranking"):
            resumed.top(3)
        # Without restored entries top() keeps its classic behaviour.
        clean = make_session(op).run(source)
        assert [r.dataflow for r in clean.top(3)] == [
            e.name for e in clean.ranking[:3]
        ]

    def test_checkpoint_records_failures_and_resume_skips_them(self, tmp_path):
        from repro.core import Dataflow

        op = make_op()
        bad = Dataflow.from_exprs("bad", op, ["i", "j"], ["k"])
        good = list(make_source(op, count=2))
        checkpoint = str(tmp_path / "sweep.jsonl")
        first = make_session(op, checkpoint=checkpoint).run([bad] + good)
        assert len(first.failures) == 1
        resumed = make_session(op, checkpoint=checkpoint, resume=True).run([bad] + good)
        assert resumed.skipped == 3
        assert not resumed.failures

    def test_early_termination_resume_replays_decisions(self, tmp_path):
        # A resumed early-termination sweep seeds its running best from the
        # checkpoint, so it makes exactly the decisions of the clean sweep.
        op = make_op()
        source = make_source(op, count=16)
        clean = make_session(op, early_termination=True, objective="sbw").run(source)
        checkpoint = str(tmp_path / "sweep.jsonl")
        make_session(op, early_termination=True, objective="sbw",
                     checkpoint=checkpoint).run(source.limit(9))
        session = make_session(op, early_termination=True, objective="sbw",
                               checkpoint=checkpoint, resume=True)
        resumed = session.run(source)
        assert ranking_key(resumed) == ranking_key(clean)
        total_pruned = len(resumed.pruned) + sum(
            1
            for record in session.checkpoint_sink.completed.values()
            if record.get("status") == "pruned"
        )
        assert total_pruned == len(clean.pruned)

    def test_topk_sink(self):
        op = make_op()
        sink = TopKSink(k=3)
        result = make_session(op, sinks=[sink]).run(make_source(op, count=10))
        assert len(sink.top()) == 3
        assert [e.signature for e in sink.top()] == [
            e.signature for e in result.ranking[:3]
        ]

    def test_top_k_session_bounds_memory_and_preserves_ranking(self):
        op = make_op()
        unbounded = make_session(op).run(make_source(op, count=12))
        bounded = make_session(op, top_k=3).run(make_source(op, count=12))
        # Identical best-3 ranking, but no report list retained.
        assert ranking_key(bounded) == ranking_key(unbounded.ranking[:3])
        assert bounded.top_k == 3
        assert bounded.evaluated == []
        assert bounded.evaluated_count == len(unbounded.evaluated)
        assert bounded.num_candidates == unbounded.num_candidates
        assert bounded.throughput > 0
        assert bounded.best.dataflow == unbounded.best.dataflow
        assert "objective = latency" in bounded.summary()

    def test_top_k_with_checkpoint_keeps_full_record(self, tmp_path):
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        result = make_session(op, top_k=2, checkpoint=str(checkpoint)).run(
            make_source(op, count=8)
        )
        assert len(result.ranking) <= 2
        # The JSONL record still holds *every* evaluated candidate.
        records = [json.loads(line) for line in checkpoint.read_text().splitlines()]
        ok_records = [r for r in records if r.get("status") == "ok"]
        assert len(ok_records) == result.evaluated_count > 2
        # And merging the checkpoint reproduces the unbounded ranking head.
        full = load_ranking(checkpoint)
        assert ranking_key(result) == ranking_key(full[:2])

    def test_top_k_resume_merges_restored_entries(self, tmp_path):
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        clean = make_session(op).run(make_source(op, count=10))
        make_session(op, checkpoint=str(checkpoint)).run(make_source(op, count=10))
        resumed = make_session(
            op, top_k=4, checkpoint=str(checkpoint), resume=True
        ).run(make_source(op, count=10))
        assert resumed.skipped == 10
        assert ranking_key(resumed) == ranking_key(clean.ranking[:4])

    def test_top_k_session_reusable_across_runs(self):
        op = make_op()
        session = make_session(op, top_k=2)
        first = session.run(make_source(op, count=6))
        second = session.run(make_source(op, count=6))
        assert ranking_key(first) == ranking_key(second)
        assert second.evaluated_count == first.evaluated_count

    def test_top_k_rejects_non_positive(self):
        with pytest.raises(ExplorationError, match="top_k"):
            make_session(make_op(), top_k=0)

    def test_callable_objective(self):
        op = make_op()
        result = make_session(op, objective=lambda r: r.energy.total_pj).run(
            make_source(op, count=4)
        )
        scores = [entry.score for entry in result.ranking]
        assert scores == sorted(scores)
        assert result.objective == "<lambda>"

    def test_unknown_objective_rejected(self):
        with pytest.raises(ExplorationError):
            make_session(make_op(), objective="beauty")

    def test_resume_without_checkpoint_rejected(self):
        # A silent full re-sweep is the opposite of what resume promises.
        with pytest.raises(ExplorationError, match="checkpoint"):
            make_session(make_op(), resume=True)

    def test_throughput_and_summary(self):
        op = make_op()
        result = make_session(op).run(make_source(op, count=4))
        assert result.throughput > 0
        assert "objective = latency" in result.summary()


class TestCheckpointFormat:
    def test_checkpoint_is_jsonl_with_meta_header(self, tmp_path):
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        make_session(op, checkpoint=str(checkpoint)).run(make_source(op, count=3))
        lines = [json.loads(line) for line in checkpoint.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert all(record["kind"] == "result" for record in lines[1:])
        assert all("signature" in record for record in lines[1:])

    def test_load_ranking_refuses_mixed_sweeps(self, tmp_path):
        # Merging checkpoints of different sweeps would rank incomparable
        # scores; sweep-merge must refuse, not produce plausible nonsense.
        op_a, op_b = make_op(), gemm(8, 8, 24)
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        make_session(op_a, checkpoint=str(path_a)).run(make_source(op_a, 3))
        make_session(op_b, checkpoint=str(path_b)).run(make_source(op_b, 3))
        with pytest.raises(ExplorationError, match="not comparable"):
            load_ranking([path_a, path_b])

    def test_load_ranking_refuses_mixed_termination_modes(self, tmp_path):
        # A pruned-mode shard is missing candidates a full-mode shard ranks.
        op = make_op()
        full_path = tmp_path / "full.jsonl"
        et_path = tmp_path / "et.jsonl"
        make_session(op, objective="sbw", checkpoint=str(full_path)).run(
            make_source(op, 6), shard=(0, 2)
        )
        make_session(op, objective="sbw", early_termination=True,
                     checkpoint=str(et_path)).run(make_source(op, 6), shard=(1, 2))
        with pytest.raises(ExplorationError, match="not comparable"):
            load_ranking([full_path, et_path])

    def test_checkpoint_requires_named_objective(self, tmp_path):
        # A callable objective has no checkpoint-verifiable identity, so
        # resumed scores could silently mix objectives.
        with pytest.raises(ExplorationError, match="named objective"):
            make_session(
                make_op(),
                objective=lambda r: r.latency_cycles,
                checkpoint=str(tmp_path / "ck.jsonl"),
            )

    def test_resume_into_empty_existing_file_writes_header(self, tmp_path):
        # `touch sweep.jsonl` (or a kill before the header write) must not
        # produce a header-less checkpoint that escapes identity validation.
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        checkpoint.write_text("")
        make_session(op, checkpoint=str(checkpoint), resume=True).run(
            make_source(op, 3)
        )
        first = json.loads(checkpoint.read_text().splitlines()[0])
        assert first["kind"] == "meta"

    def test_headerless_checkpoint_refused(self, tmp_path):
        op = make_op()
        good = tmp_path / "good.jsonl"
        result = make_session(op, checkpoint=str(good)).run(make_source(op, 3))
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(
            "\n".join(good.read_text().splitlines()[1:]) + "\n"
        )
        with pytest.raises(ExplorationError, match="no meta header"):
            make_session(op, checkpoint=str(headerless), resume=True).run(
                make_source(op, 3)
            )
        with pytest.raises(ExplorationError, match="no meta header"):
            load_ranking(headerless)
        assert ranking_key(load_ranking(good)) == ranking_key(result)

    def test_load_ranking_single_path(self, tmp_path):
        op = make_op()
        checkpoint = tmp_path / "sweep.jsonl"
        result = make_session(op, checkpoint=str(checkpoint)).run(
            make_source(op, count=5)
        )
        assert ranking_key(load_ranking(checkpoint)) == ranking_key(result)
