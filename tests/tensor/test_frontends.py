"""Unit tests for the C-like and einsum frontends."""

import pytest

from repro.errors import ParseError
from repro.tensor import parse_c_loop_nest, parse_einsum
from repro.tensor.access import AccessMode

GEMM_C = """
for (i = 0; i < 4; i++)
  for (j = 0; j < 5; j++)
    for (k = 0; k < 6; k++)
      Y[i][j] += A[i][k] * B[k][j];
"""


class TestCFrontend:
    def test_gemm_loop_nest(self):
        op = parse_c_loop_nest(GEMM_C, name="gemm")
        assert op.loop_dims == ("i", "j", "k")
        assert op.num_instances() == 120
        assert set(op.input_tensors) == {"A", "B"}
        assert op.output_tensors == ("Y",)

    def test_update_vs_assign(self):
        update = parse_c_loop_nest("for (i = 0; i < 3; i++) Y[i] += A[i];")
        assign = parse_c_loop_nest("for (i = 0; i < 3; i++) Y[i] = A[i];")
        assert update.accesses_to("Y")[0].mode is AccessMode.UPDATE
        assert assign.accesses_to("Y")[0].mode is AccessMode.WRITE

    def test_statement_label_and_braces(self):
        source = """
        for (i = 0; i < 4; i++) {
          for (j = 0; j < 3; j++) {
            S: Y[i] += A[i + j] * B[j];
          }
        }
        """
        op = parse_c_loop_nest(source)
        a = op.access_maps("A")[0]
        assert a.apply_point((2, 1)).coords == (3,)

    def test_inclusive_bound(self):
        op = parse_c_loop_nest("for (i = 0; i <= 3; i++) Y[i] += A[i];")
        assert op.num_instances() == 4

    def test_comma_subscripts(self):
        op = parse_c_loop_nest(
            "for (i = 0; i < 2; i++) for (j = 0; j < 2; j++) Y[i, j] += A[i, j];"
        )
        assert op.tensor_footprint("Y") == 4

    def test_missing_loops_rejected(self):
        with pytest.raises(ParseError):
            parse_c_loop_nest("Y[i] += A[i];")

    def test_bad_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_c_loop_nest("for (i = 0; i < 3; i++) do_something();")

    def test_unknown_iterator_in_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_c_loop_nest("for (i = 0; i < 3; i++) Y[z] += A[i];")

    def test_duplicate_iterators_rejected(self):
        with pytest.raises(ParseError):
            parse_c_loop_nest(
                "for (i = 0; i < 3; i++) for (i = 0; i < 3; i++) Y[i] += A[i];"
            )


class TestEinsumFrontend:
    def test_gemm(self):
        op = parse_einsum("Y[i,j] += A[i,k] * B[k,j]", {"i": 4, "j": 5, "k": 6})
        assert op.num_instances() == 120
        assert op.tensor_footprint("Y") == 20

    def test_skewed_subscript(self):
        op = parse_einsum("Y[i] += A[i + j] * B[j]", {"i": 4, "j": 3})
        assert op.tensor_footprint("A") == 6

    def test_loop_order_follows_sizes_mapping(self):
        op = parse_einsum("Y[a,b] = X[b,a]", {"a": 2, "b": 3})
        assert op.loop_dims == ("a", "b")

    def test_undeclared_iterator_rejected(self):
        with pytest.raises(ParseError):
            parse_einsum("Y[i] += A[i,z]", {"i": 4})

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_einsum("this is not einsum", {"i": 4})
