"""Unit tests for the kernel factories and the TensorOp IR."""

import pytest

from repro.errors import SpaceError
from repro.tensor import conv1d, conv2d, gemm, jacobi2d, mmc, mttkrp
from repro.tensor.access import AccessMode
from repro.tensor.kernels import depthwise_conv2d, make_kernel


class TestGemm:
    def test_shapes_and_macs(self):
        op = gemm(4, 5, 6)
        assert op.loop_dims == ("i", "j", "k")
        assert op.num_instances() == 120
        assert op.macs() == 120

    def test_tensor_roles(self):
        op = gemm(4, 4, 4)
        assert set(op.input_tensors) == {"A", "B"}
        assert op.output_tensors == ("Y",)

    def test_access_functions(self):
        op = gemm(4, 4, 4)
        a = op.access_maps("A")[0]
        assert a.apply_point((1, 2, 3)).coords == (1, 3)
        y = op.access_maps("Y")[0]
        assert y.apply_point((1, 2, 3)).coords == (1, 2)

    def test_footprints(self):
        op = gemm(4, 5, 6)
        assert op.tensor_footprint("A") == 24
        assert op.tensor_footprint("B") == 30
        assert op.tensor_footprint("Y") == 20


class TestConv:
    def test_conv2d_structure(self):
        op = conv2d(4, 3, 5, 5, 3, 3)
        assert op.loop_dims == ("k", "c", "ox", "oy", "rx", "ry")
        assert op.num_instances() == 4 * 3 * 5 * 5 * 3 * 3
        assert set(op.tensor_names) == {"A", "B", "Y"}

    def test_conv2d_halo_access(self):
        op = conv2d(2, 2, 4, 4, 3, 3)
        a = op.access_maps("A")[0]
        assert a.apply_point((0, 1, 2, 3, 1, 2)).coords == (1, 3, 5)

    def test_conv2d_stride(self):
        op = conv2d(1, 1, 4, 4, 3, 3, stride=2)
        a = op.access_maps("A")[0]
        assert a.apply_point((0, 0, 2, 1, 1, 0)).coords == (0, 5, 2)

    def test_conv1d_matches_figure1(self):
        op = conv1d(4, 3)
        assert op.num_instances() == 12
        assert op.tensor_footprint("A") == 6

    def test_depthwise_has_no_k_loop(self):
        op = depthwise_conv2d(4, 5, 5, 3, 3)
        assert "k" not in op.loop_dims
        assert op.num_instances() == 4 * 5 * 5 * 3 * 3


class TestOtherKernels:
    def test_mttkrp(self):
        op = mttkrp(3, 4, 5, 6)
        assert set(op.input_tensors) == {"A", "B", "C"}
        assert op.num_instances() == 360
        assert op.tensor_footprint("A") == 3 * 5 * 6

    def test_mmc(self):
        op = mmc(3, 4, 5, 6)
        assert op.tensor_footprint("A") == 15
        assert op.tensor_footprint("C") == 24

    def test_jacobi_reads_a_five_times(self):
        op = jacobi2d(6, 6)
        assert len(op.accesses_to("A")) == 5
        assert op.num_instances() == 16
        assert op.total_accesses("A") == 80

    def test_jacobi_footprint_includes_halo(self):
        op = jacobi2d(6, 6)
        # interior 4x4 plus the one-element halo actually touched
        assert op.tensor_footprint("A") == 32

    def test_make_kernel_by_name(self):
        op = make_kernel("gemm", [2, 2, 2])
        assert op.num_instances() == 8
        with pytest.raises(KeyError):
            make_kernel("nope", [1])


class TestTensorOpApi:
    def test_loop_sizes(self):
        op = gemm(4, 5, 6)
        assert op.loop_sizes() == {"i": 4, "j": 5, "k": 6}

    def test_accesses_to_unknown_tensor(self):
        with pytest.raises(SpaceError):
            gemm(2, 2, 2).accesses_to("Z")

    def test_with_domain_scaling(self):
        from repro.isl.iset import IntSet

        op = gemm(8, 8, 8)
        smaller = IntSet.box(op.domain.space, {"i": (0, 4), "j": (0, 4), "k": (0, 4)})
        scaled = op.with_domain(smaller)
        assert scaled.num_instances() == 64
        assert scaled.tensor_names == op.tensor_names

    def test_access_mode_flags(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads
        assert AccessMode.UPDATE.reads and AccessMode.UPDATE.writes

    def test_describe_mentions_all_tensors(self):
        text = gemm(2, 2, 2).describe()
        assert "A" in text and "B" in text and "Y" in text
