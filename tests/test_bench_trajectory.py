"""Tests for the benchmark trajectory plumbing.

Two pieces keep the committed ``BENCH_engine.json`` honest across PRs: the
root conftest merges fresh records into the existing trajectory instead of
overwriting it, and ``benchmarks/check_bench_regression.py`` gates CI on the
recorded candidates/sec.  Both are plain modules loaded by path here.
"""

import importlib.util
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).parent.parent


def load_module(relative: str, name: str):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / relative)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMergeBenchRecords:
    def test_new_records_replace_same_name_and_keep_others(self):
        conftest = load_module("conftest.py", "repro_root_conftest")
        existing = {
            "created": "2026-01-01T00:00:00",
            "records": [
                {"benchmark": "engine_sweep_gemm48x100", "fused_speedup": 1.0},
                {"benchmark": "sweep_pipeline", "candidates_per_sec": 42.0},
            ],
        }
        fresh = [{"benchmark": "engine_sweep_gemm48x100", "fused_speedup": 2.4}]
        merged = conftest.merge_bench_records(existing, fresh)
        by_name = {r["benchmark"]: r for r in merged["records"]}
        assert by_name["engine_sweep_gemm48x100"]["fused_speedup"] == 2.4
        assert by_name["sweep_pipeline"]["candidates_per_sec"] == 42.0
        assert merged["created"] != existing["created"]

    def test_default_bench_json_is_repo_root(self):
        conftest = load_module("conftest.py", "repro_root_conftest2")
        assert conftest.DEFAULT_BENCH_JSON == REPO_ROOT / "BENCH_engine.json"


class TestRegressionChecker:
    def write(self, path, cps, speedup=None):
        record = {
            "benchmark": "engine_sweep_gemm48x100",
            "fused_candidates_per_sec": cps,
        }
        if speedup is not None:
            record["fused_speedup"] = speedup
        path.write_text(json.dumps({"records": [record]}))
        return str(path)

    def test_within_tolerance_passes(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = self.write(tmp_path / "cur.json", 85.0, speedup=2.2)
        assert checker.main(["--baseline", baseline, "--current", current]) == 0

    def test_regression_of_both_metrics_fails(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker2")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = self.write(tmp_path / "cur.json", 70.0, speedup=1.5)
        assert checker.main(["--baseline", baseline, "--current", current]) == 1

    def test_slow_machine_with_healthy_ratio_passes(self, tmp_path):
        # A slower CI runner shows low absolute throughput but the
        # fused-vs-affine ratio (same-machine measurement) stays intact.
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker2b")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = self.write(tmp_path / "cur.json", 55.0, speedup=2.35)
        assert checker.main(["--baseline", baseline, "--current", current]) == 0

    def test_fast_machine_cannot_mask_ratio_regression(self, tmp_path):
        # A faster runner keeps absolute throughput above the floor, but the
        # same-run fused-vs-affine ratio still exposes the code regression.
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker2d")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = self.write(tmp_path / "cur.json", 110.0, speedup=1.1)
        assert checker.main(["--baseline", baseline, "--current", current]) == 1

    def test_absolute_regression_without_ratio_fails(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker2c")
        baseline = self.write(tmp_path / "base.json", 100.0)
        current = self.write(tmp_path / "cur.json", 70.0)
        assert checker.main(["--baseline", baseline, "--current", current]) == 1

    def test_missing_baseline_record_is_not_a_failure(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker3")
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"records": []}))
        current = self.write(tmp_path / "cur.json", 50.0)
        assert checker.main(["--baseline", str(baseline), "--current", current]) == 0

    def test_missing_current_record_errors(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker4")
        baseline = self.write(tmp_path / "base.json", 100.0)
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"records": []}))
        assert checker.main(["--baseline", baseline, "--current", str(current)]) == 2

    def test_renamed_record_does_not_misfire(self, tmp_path):
        # The fresh run measured a *renamed* benchmark: the gated name is
        # absent from the current file but other records exist.  Only
        # benchmarks present in both files are compared, so this is a
        # nothing-to-gate pass, not an exit-2 misfire.
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker5")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"records": [
            {"benchmark": "engine_sweep_gemm64x100",
             "fused_candidates_per_sec": 80.0},
        ]}))
        assert checker.main(["--baseline", baseline, "--current", str(current)]) == 0

    def test_added_record_does_not_affect_the_gate(self, tmp_path):
        # A brand-new record (e.g. fused_xp) rides along in the fresh file;
        # the gate still compares only the shared benchmark.
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker6")
        baseline = self.write(tmp_path / "base.json", 100.0, speedup=2.3)
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"records": [
            {"benchmark": "engine_sweep_gemm48x100",
             "fused_candidates_per_sec": 97.0, "fused_speedup": 2.28},
            {"benchmark": "fused_xp", "numpy_candidates_per_sec": 1.0},
        ]}))
        assert checker.main(["--baseline", baseline, "--current", str(current)]) == 0
        regressed = tmp_path / "bad.json"
        regressed.write_text(json.dumps({"records": [
            {"benchmark": "engine_sweep_gemm48x100",
             "fused_candidates_per_sec": 60.0, "fused_speedup": 1.2},
            {"benchmark": "fused_xp", "numpy_candidates_per_sec": 999.0},
        ]}))
        assert checker.main(["--baseline", baseline, "--current", str(regressed)]) == 1

    def test_missing_field_on_either_side_is_skipped(self, tmp_path):
        checker = load_module("benchmarks/check_bench_regression.py", "bench_checker7")
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"records": [
            {"benchmark": "engine_sweep_gemm48x100", "fused_speedup": 2.3},
        ]}))
        current = self.write(tmp_path / "cur.json", 50.0, speedup=2.2)
        assert checker.main(["--baseline", str(baseline), "--current", current]) == 0
