"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_catalog_command(self, capsys):
        assert main(["catalog"]) == 0
        output = capsys.readouterr().out
        assert "(IJ-P | J,IJK-T)" in output

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "fig12" in output

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "not-an-experiment"]) == 1

    def test_run_fast_experiment(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        output = capsys.readouterr().out
        assert "fig1-reuse-example" in output

    def test_analyze_command(self, capsys):
        code = main([
            "analyze", "--kernel", "gemm", "--sizes", "16", "16", "16",
            "--dataflow", "(IJ-P | J,IJK-T)", "--pe", "8", "8",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "latency" in output and "PE utilization" in output

    def test_explore_command(self, capsys):
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "6", "--objective", "latency", "--top", "3",
            "--early-termination",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "objective = latency" in output
        assert "engine:" in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "tenet" in capsys.readouterr().out

    def test_every_registered_experiment_is_callable(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name

    def test_parser_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--version"])
