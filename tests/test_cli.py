"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_catalog_command(self, capsys):
        assert main(["catalog"]) == 0
        output = capsys.readouterr().out
        assert "(IJ-P | J,IJK-T)" in output

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "fig12" in output

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "not-an-experiment"]) == 1

    def test_run_fast_experiment(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        output = capsys.readouterr().out
        assert "fig1-reuse-example" in output

    def test_analyze_command(self, capsys):
        code = main([
            "analyze", "--kernel", "gemm", "--sizes", "16", "16", "16",
            "--dataflow", "(IJ-P | J,IJK-T)", "--pe", "8", "8",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "latency" in output and "PE utilization" in output

    def test_explore_command(self, capsys):
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "6", "--objective", "latency", "--top", "3",
            "--early-termination",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "objective = latency" in output
        assert "engine:" in output

    def test_explore_fused_backend_with_profile(self, capsys):
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "6", "--backend", "fused", "--top", "3",
            "--profile",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "objective = latency" in output
        assert "backend=fused" in output
        assert "profile (per-stage wall clock" in output
        # The profile header labels the resolved backend and array namespace,
        # and the breakdown includes the host<->device transfer stage.
        assert "backend=fused, namespace=numpy:cpu" in output
        for stage in ("stamps", "volumes", "transfer"):
            assert stage in output

    def test_explore_unavailable_device_is_clear_capability_error(self, capsys):
        import repro.core.xp as xpmod

        missing = [n for n in ("torch", "cupy") if not xpmod.probe_namespace(n)[0]]
        if not missing:
            pytest.skip("both torch and cupy installed")
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "6", "--device", missing[0],
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "tenet explore: error" in err
        assert "available namespaces" in err and "numpy" in err

    def test_explore_numpy_device_aliases(self, capsys):
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "4", "--device", "cpu", "--top", "2",
        ])
        assert code == 0
        assert "objective = latency" in capsys.readouterr().out

    def test_explore_top_bounds_ranking(self, capsys):
        code = main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "8", "--top", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        # Exactly two ranked lines (" 1." and " 2."), nothing beyond the bound.
        assert "  1. " in output and "  2. " in output and "  3. " not in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "tenet" in capsys.readouterr().out

    def test_every_registered_experiment_is_callable(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name

    def test_parser_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--version"])


class TestShardedExplore:
    def _explore(self, *extra):
        return main([
            "explore", "--kernel", "gemm", "--sizes", "12", "12", "12",
            "--max-candidates", "8", "--top", "3", *extra,
        ])

    def test_explore_shard_and_checkpoint(self, capsys, tmp_path):
        full = tmp_path / "full.jsonl"
        assert self._explore("--checkpoint", str(full)) == 0
        reference = capsys.readouterr().out
        shard_paths = []
        for index in range(2):
            path = tmp_path / f"s{index}.jsonl"
            shard_paths.append(str(path))
            assert self._explore("--shard", f"{index}/2", "--checkpoint", str(path)) == 0
            assert "shard" in capsys.readouterr().out
        # Merged shard checkpoints render the same ranking as the full sweep.
        assert main(["sweep-merge", str(full)]) == 0
        merged_full = capsys.readouterr().out
        assert main(["sweep-merge", *shard_paths]) == 0
        merged_shards = capsys.readouterr().out
        assert merged_full == merged_shards
        assert "objective = latency" in reference

    def test_explore_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        assert self._explore("--checkpoint", str(checkpoint)) == 0
        capsys.readouterr()
        assert self._explore("--checkpoint", str(checkpoint), "--resume") == 0
        assert "resumed" in capsys.readouterr().out

    def test_explore_invalid_shard(self, capsys):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError):
            self._explore("--shard", "2/2")

    def test_sweep_merge_empty(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["sweep-merge", str(empty)]) == 1


class TestServeCommand:
    def test_serve_requests_file(self, capsys, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"kernel": "gemm", "sizes": [12, 12, 12],
                        "max_candidates": 4}) + "\n"
            + json.dumps({"kernel": "gemm", "sizes": [12, 12, 12],
                          "objective": "energy", "max_candidates": 4}) + "\n"
        )
        assert main(["serve", "--requests", str(requests)]) == 0
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(records) == 2
        assert records[1]["engine_reused"] is True
        assert "served 2" in captured.err
        # The startup banner advertises the selected device and every
        # namespace's availability.
        assert "device=numpy" in captured.err
        assert "array namespaces" in captured.err
        assert "numpy=yes" in captured.err

    def test_serve_stats_advertises_namespaces(self, capsys, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"cmd": "stats"}\n')
        assert main(["serve", "--requests", str(requests)]) == 0
        captured = capsys.readouterr()
        record = json.loads(captured.out.splitlines()[0])
        assert record["device"] == "numpy"
        assert "numpy" in record["array_namespaces"]
        assert record["engine_devices"] == []

    def test_serve_unavailable_device_is_clear_capability_error(self, capsys):
        import repro.core.xp as xpmod

        missing = [n for n in ("torch", "cupy") if not xpmod.probe_namespace(n)[0]]
        if not missing:
            pytest.skip("both torch and cupy installed")
        assert main(["serve", "--requests", "/dev/null",
                     "--device", missing[0]]) == 1
        err = capsys.readouterr().err
        assert "tenet serve: error" in err
        assert "available namespaces" in err
