"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ArchSpec, Mesh, NoInterconnect, PEArray, Systolic2D
from repro.core import Dataflow, analyze
from repro.isl import IntSet, parse_set
from repro.isl.count import count_points
from repro.isl.expr import AffExpr, var
from repro.tensor import gemm

dims = st.sampled_from(["i", "j", "k", "l"])
small_ints = st.integers(min_value=-6, max_value=6)


def expr_strategy():
    """Random quasi-affine expressions over a small variable set."""
    base = st.one_of(
        dims.map(AffExpr.variable),
        small_ints.map(AffExpr.constant),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: pair[0] + pair[1]),
            st.tuples(children, small_ints).map(lambda pair: pair[0] * pair[1]),
            st.tuples(children, st.integers(2, 5)).map(lambda pair: pair[0] % pair[1]),
            st.tuples(children, st.integers(2, 5)).map(lambda pair: pair[0] // pair[1]),
            children.map(lambda e: -e),
        )

    return st.recursive(base, extend, max_leaves=8)


env_strategy = st.fixed_dictionaries({name: st.integers(-20, 20) for name in ["i", "j", "k", "l"]})


class TestExpressionProperties:
    @given(expr_strategy(), env_strategy)
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_vector_evaluation_agree(self, expr, env):
        import numpy as np

        scalar = expr.evaluate(env)
        vector = expr.evaluate_vec({name: np.array([value]) for name, value in env.items()})
        assert int(vector[0]) == scalar

    @given(expr_strategy(), expr_strategy(), env_strategy)
    @settings(max_examples=60, deadline=None)
    def test_addition_is_commutative_under_evaluation(self, left, right, env):
        assert (left + right).evaluate(env) == (right + left).evaluate(env)

    @given(expr_strategy(), env_strategy)
    @settings(max_examples=60, deadline=None)
    def test_negation_is_involutive(self, expr, env):
        assert (-(-expr)).evaluate(env) == expr.evaluate(env)

    @given(expr_strategy(), env_strategy)
    @settings(max_examples=60, deadline=None)
    def test_interval_bounds_contain_evaluation(self, expr, env):
        bounds = {name: (value, value + 3) for name, value in env.items()}
        lo, hi = expr.bounds(bounds)
        for offset in range(4):
            point = {name: value + offset for name, value in env.items()}
            assert lo <= expr.evaluate(point) <= hi

    @given(expr_strategy(), env_strategy)
    @settings(max_examples=40, deadline=None)
    def test_substitution_matches_direct_evaluation(self, expr, env):
        substituted = expr.substitute({"i": var("j") + 1})
        shifted = dict(env)
        shifted["i"] = env["j"] + 1
        assert substituted.evaluate(env) == expr.evaluate(shifted)


class TestSetCountingProperties:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_triangle_count_formula(self, size_i, size_j, cutoff):
        text = (
            f"{{ S[i, j] : 0 <= i < {size_i} and 0 <= j < {size_j} and i + j < {cutoff} }}"
        )
        expected = sum(
            1 for i in range(size_i) for j in range(size_j) if i + j < cutoff
        )
        assert parse_set(text).count() == expected

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_box_count_is_product(self, a, b, c):
        box = IntSet.from_sizes("S", ["x", "y", "z"], [a, b, c])
        assert count_points(box) == a * b * c

    @given(st.integers(1, 20), st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_modulus_constraint_count(self, size, modulus):
        text = f"{{ S[i] : 0 <= i < {size} and i mod {modulus} = 0 }}"
        assert parse_set(text).count() == len(range(0, size, modulus))


class TestModelInvariants:
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 8), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_volume_invariants_hold_for_random_gemm_shapes(self, size_i, size_j, size_k, fold):
        op = gemm(size_i, size_j, size_k)
        rows = max(1, size_i // fold)
        cols = max(1, size_j // fold)
        dataflow = Dataflow.from_exprs(
            "prop", op,
            [f"i mod {rows}", f"j mod {cols}"],
            [f"fl(i/{rows})", f"fl(j/{cols})", f"i mod {rows} + j mod {cols} + k"],
        )
        arch = ArchSpec(pe_array=PEArray((rows, cols)), interconnect=Systolic2D())
        report = analyze(op, dataflow, arch)
        instances = op.num_instances()
        for volume in report.volumes.values():
            assert volume.total == instances
            assert volume.reuse == volume.temporal_reuse + volume.spatial_reuse
            assert 0 <= volume.unique <= volume.total
            assert volume.footprint <= volume.total
            assert volume.unique >= volume.footprint or volume.total == 0
        assert 0 < report.average_pe_utilization <= 1.0
        assert report.max_pe_utilization <= 1.0
        assert report.latency_cycles >= report.utilization.num_time_stamps

    @given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_no_interconnect_never_beats_systolic(self, size_i, size_j, size_k):
        op = gemm(size_i, size_j, size_k)
        dataflow = Dataflow.from_exprs(
            "prop", op, ["i", "j"], ["i + j + k"],
        )
        systolic = ArchSpec(pe_array=PEArray((size_i, size_j)), interconnect=Systolic2D())
        isolated = ArchSpec(pe_array=PEArray((size_i, size_j)), interconnect=NoInterconnect())
        with_links = analyze(op, dataflow, systolic)
        without_links = analyze(op, dataflow, isolated)
        assert without_links.unique_volume() >= with_links.unique_volume()

    @given(st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_mesh_reuse_at_least_systolic(self, size_i, size_j):
        op = gemm(size_i, size_j, 4)
        dataflow = Dataflow.from_exprs("prop", op, ["i", "j"], ["i + j + k"])
        mesh = analyze(op, dataflow, ArchSpec(pe_array=PEArray((size_i, size_j)),
                                              interconnect=Mesh()))
        systolic = analyze(op, dataflow, ArchSpec(pe_array=PEArray((size_i, size_j)),
                                                  interconnect=Systolic2D()))
        assert mesh.unique_volume() <= systolic.unique_volume()
