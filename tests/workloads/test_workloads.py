"""Tests for the workload tables and the scaling helpers."""

import pytest

from repro.workloads import (
    alexnet,
    als,
    googlenet,
    mobilenet,
    scale_layer,
    scale_sizes,
    scaled_op,
    transformer,
    vgg16,
)
from repro.workloads.dnn import ConvLayer, MttkrpLayer


class TestLayerTables:
    def test_alexnet_has_five_convs(self):
        net = alexnet()
        assert len(net) == 5
        conv3 = net.layer("CONV3")
        assert conv3.out_channels == 384 and conv3.in_channels == 256
        assert conv3.out_x == 13 and conv3.filter_x == 3

    def test_vgg16_layer_names(self):
        assert vgg16().layer_names() == ["CONV1-1", "CONV2-1", "CONV3-1", "CONV4-1", "CONV5-1"]

    def test_googlenet_and_mobilenet_types(self):
        assert any(layer.depthwise for layer in mobilenet())
        assert any(layer.is_pointwise for layer in mobilenet())
        assert not any(layer.depthwise for layer in googlenet())

    def test_macs_are_positive_and_consistent(self):
        for workload in (alexnet(), vgg16(), googlenet(), mobilenet()):
            assert workload.total_macs > 0
            for layer in workload:
                assert layer.macs == layer.to_op().num_instances()

    def test_als_full_scale_sizes(self):
        full = als(full_scale=True).layers[0]
        assert isinstance(full, MttkrpLayer)
        assert full.size_i == 480_000
        assert als().total_macs < full.macs

    def test_transformer_layers(self):
        assert len(transformer()) == 3
        assert transformer(full_scale=True).total_macs > transformer().total_macs

    def test_unknown_layer_lookup(self):
        with pytest.raises(KeyError):
            alexnet().layer("CONV9")


class TestScaling:
    def test_scale_sizes_preserves_filters(self):
        sizes = {"k": 512, "c": 512, "ox": 14, "oy": 14, "rx": 3, "ry": 3}
        scaled, factor = scale_sizes(sizes, max_instances=500_000)
        assert scaled["rx"] == 3 and scaled["ry"] == 3
        product = 1
        for value in scaled.values():
            product *= value
        assert product <= 500_000
        assert factor == pytest.approx((512 * 512 * 14 * 14 * 9) / product)

    def test_scale_noop_when_small_enough(self):
        sizes = {"i": 8, "j": 8}
        scaled, factor = scale_sizes(sizes, max_instances=1000)
        assert scaled == sizes and factor == 1.0

    def test_scale_layer_roundtrip(self):
        layer = vgg16().layer("CONV4-1")
        scaled, factor = scale_layer(layer, max_instances=200_000)
        assert isinstance(scaled, ConvLayer)
        assert scaled.macs <= 200_000
        assert factor > 1.0
        assert scaled.filter_x == layer.filter_x

    def test_scale_depthwise_layer(self):
        layer = mobilenet().layer("dw-CONV2")
        scaled, _ = scale_layer(layer, max_instances=50_000)
        assert scaled.depthwise
        assert scaled.macs <= 50_000

    def test_scaled_op(self):
        from repro.tensor import gemm

        op = gemm(512, 512, 512)
        smaller, factor = scaled_op(op, max_instances=100_000)
        assert smaller.num_instances() <= 100_000
        assert factor > 1.0
        assert smaller.loop_dims == op.loop_dims

    def test_scaled_dimensions_stay_pe_aligned(self):
        sizes = {"k": 256, "c": 256, "ox": 14, "oy": 14, "rx": 3, "ry": 3}
        scaled, _ = scale_sizes(sizes, max_instances=300_000, granularity=8)
        assert scaled["k"] % 8 == 0
        assert scaled["c"] % 8 == 0
